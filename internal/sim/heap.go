package sim

// event is a scheduled callback. Events are ordered by (at, seq): the
// sequence number breaks ties deterministically in FIFO order of
// scheduling, which is what makes runs reproducible.
type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // position in the heap, -1 when popped
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. The zero value is not useful; Timers are produced by the
// engine's scheduling methods.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the cancellation happened
// before the event fired. Stopping an already-fired or already-stopped
// timer is a no-op returning false.
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.cancelled || t.ev.index < 0 {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.ev != nil && !t.ev.cancelled && t.ev.index >= 0
}

// eventHeap is a binary min-heap of events keyed by (at, seq). It is
// hand-rolled rather than using container/heap to avoid the interface
// boxing on the engine's hottest path.
type eventHeap struct {
	items []*event
}

func (h *eventHeap) len() int { return len(h.items) }

func (h *eventHeap) push(ev *event) {
	ev.index = len(h.items)
	h.items = append(h.items, ev)
	h.up(ev.index)
}

func (h *eventHeap) pop() *event {
	n := len(h.items)
	top := h.items[0]
	h.items[0] = h.items[n-1]
	h.items[0].index = 0
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	top.index = -1
	return top
}

func (h *eventHeap) peek() *event { return h.items[0] }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(left, smallest) {
			smallest = left
		}
		if right < n && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
