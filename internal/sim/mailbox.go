package sim

// Mailbox is an unbounded FIFO channel between simulated processes. It
// is the building block for NIC receive queues, RPC reply slots, and
// scheduler run queues. Senders never block (bounded behaviour such as
// NIC buffer overflow is modelled explicitly by the protocol layers,
// which is where the paper's Column benchmark loses). Receivers block,
// optionally with a deadline.
type Mailbox[T any] struct {
	eng     *Engine
	name    string
	items   []T
	waiters []*mboxWaiter[T]
}

type mboxWaiter[T any] struct {
	p     *Proc
	val   T
	timer Timer
}

// NewMailbox creates an empty mailbox on e.
func NewMailbox[T any](e *Engine, name string) *Mailbox[T] {
	return &Mailbox[T]{eng: e, name: name}
}

// Put deposits v, waking the longest-waiting receiver if any. It never
// blocks and may be called from event callbacks as well as processes.
func (m *Mailbox[T]) Put(v T) {
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		w.timer.Stop()
		w.val = v
		m.eng.wakeProcAt(m.eng.now, w.p)
		return
	}
	m.items = append(m.items, v)
}

// Get blocks p until an item is available and returns it.
func (m *Mailbox[T]) Get(p *Proc) T {
	v, _ := m.getDeadline(p, -1)
	return v
}

// GetTimeout is Get with a deadline; ok is false when the deadline fired
// first (and no item was consumed).
func (m *Mailbox[T]) GetTimeout(p *Proc, d Duration) (v T, ok bool) {
	return m.getDeadline(p, d)
}

func (m *Mailbox[T]) getDeadline(p *Proc, d Duration) (v T, ok bool) {
	if len(m.items) > 0 {
		v = m.items[0]
		var zero T
		m.items[0] = zero
		m.items = m.items[1:]
		return v, true
	}
	w := &mboxWaiter[T]{p: p}
	m.waiters = append(m.waiters, w)
	if d >= 0 {
		w.timer = m.eng.procTimeoutAfter(d, p)
	}
	tok := p.park()
	if tok.timeout {
		// The deadline fired before Put reached us: leave the queue.
		// Nothing ran between the timeout wake and here, so the waiter
		// is still in the list.
		m.removeWaiter(w)
		return v, false
	}
	return w.val, true
}

// TryGet returns an item without blocking; ok reports success.
func (m *Mailbox[T]) TryGet() (v T, ok bool) {
	if len(m.items) == 0 {
		return v, false
	}
	v = m.items[0]
	var zero T
	m.items[0] = zero
	m.items = m.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Waiting returns the number of blocked receivers.
func (m *Mailbox[T]) Waiting() int { return len(m.waiters) }

func (m *Mailbox[T]) removeWaiter(w *mboxWaiter[T]) {
	for i, q := range m.waiters {
		if q == w {
			m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
			return
		}
	}
}
