package sim

import "github.com/nowproject/now/internal/obs"

// engineStats is the engine's always-on tally block: plain int64 fields
// bumped unconditionally, with every site off the critical self-wake
// path (switch and callback dispatches are dominated by the channel
// handoff / callback body; cancellation reaps are rare). The remaining
// engine metrics are not tallied at all — they are derived at mirror
// time from state the engine maintains anyway:
//
//	scheduled  = seq        (one sequence number per schedule() call)
//	spawns     = nextPID    (one pid per SpawnAt)
//	dispatched = seq - cancelled - Pending()   (pops classify every event)
//	self-wakes = dispatched - switches - callbacks
//
// The derivations are exact, not approximations: events leave the
// queues only through the dispatch loop's pop, which counts each one as
// cancelled, a callback, a switch, or a self-wake. This is what keeps
// the unobserved ProcSwitch benchmark inside the <5 % budget the
// scheduler benchmarks enforce — the hot self-wake path carries no
// tally work beyond the queue-depth high-water checks in schedule().
// Observe mirrors the tallies into a registry at Snapshot time via an
// OnSample delta hook; without a registry they are simply never read.
type engineStats struct {
	cancelled int64 // sim.events.cancelled (reaped at pop)
	callbacks int64 // sim.events.callbacks
	switches  int64 // sim.proc.switches (driver-token handoffs)
	runqMax   int64 // sim.runq.depth.max
	heapMax   int64 // sim.heap.depth.max
}

// Observe attaches a metrics registry to the engine. Call it once, on a
// fresh engine, before Run: it registers the engine's collectors and
// installs the virtual clock that stamps every span recorded anywhere
// in the simulation. A nil registry leaves the engine unobserved (the
// default; the tally fields still tick but nothing reads them).
//
// Engine metrics (names per docs/OBSERVABILITY.md):
//
//	sim.events.scheduled     events placed on the queues
//	sim.events.dispatched    non-cancelled events executed
//	sim.events.cancelled     cancelled events reaped at pop
//	sim.events.callbacks     dispatched events that ran a callback fn
//	sim.proc.wakes.self      process wakes that kept the driver token
//	sim.proc.switches        process wakes that handed the token over
//	sim.proc.spawns          processes spawned
//	sim.runq.depth.max       same-time FIFO high-water mark
//	sim.heap.depth.max       future-event heap high-water mark
//	sim.procs.live           processes alive at snapshot (sampled)
//	sim.events.pending       events queued at snapshot (sampled)
//	sim.time.now.ns          virtual time at snapshot (sampled)
//
// The counters are mirrored (or derived — see engineStats) from engine
// state when the registry snapshots, so they are exact totals as of the
// snapshot, not a sampling approximation.
func (e *Engine) Observe(r *obs.Registry) {
	if r == nil {
		return
	}
	r.SetClock(func() obs.Time { return int64(e.now) })
	scheduled := r.Counter("sim.events.scheduled")
	dispatched := r.Counter("sim.events.dispatched")
	cancelled := r.Counter("sim.events.cancelled")
	callbacks := r.Counter("sim.events.callbacks")
	selfWakes := r.Counter("sim.proc.wakes.self")
	switches := r.Counter("sim.proc.switches")
	spawns := r.Counter("sim.proc.spawns")
	runqMax := r.Gauge("sim.runq.depth.max")
	heapMax := r.Gauge("sim.heap.depth.max")
	live := r.Gauge("sim.procs.live")
	pending := r.Gauge("sim.events.pending")
	now := r.Gauge("sim.time.now.ns")
	var last struct {
		scheduled, dispatched, cancelled, callbacks, selfWakes, switches, spawns int64
	}
	r.OnSample(func() {
		s := e.stat
		queued := int64(e.Pending())
		sched := int64(e.seq)
		disp := sched - s.cancelled - queued
		self := disp - s.switches - s.callbacks
		spwn := int64(e.nextPID)
		scheduled.Add(sched - last.scheduled)
		dispatched.Add(disp - last.dispatched)
		cancelled.Add(s.cancelled - last.cancelled)
		callbacks.Add(s.callbacks - last.callbacks)
		selfWakes.Add(self - last.selfWakes)
		switches.Add(s.switches - last.switches)
		spawns.Add(spwn - last.spawns)
		last.scheduled, last.dispatched, last.cancelled = sched, disp, s.cancelled
		last.callbacks, last.selfWakes, last.switches, last.spawns = s.callbacks, self, s.switches, spwn
		runqMax.Set(s.runqMax)
		heapMax.Set(s.heapMax)
		live.Set(int64(len(e.procs)))
		pending.Set(queued)
		now.Set(int64(e.now))
	})
}

// Instrument is Observe under the name every other subsystem uses, so
// the engine satisfies the front door's Instrumentable interface.
func (e *Engine) Instrument(r *obs.Registry) { e.Observe(r) }
