package sim

import (
	"bytes"
	"testing"

	"github.com/nowproject/now/internal/obs"
)

// TestEngineMetrics attaches a registry and checks the engine's
// counters account for everything dispatched. It also runs under the
// repository's -race gate, proving the collectors stay race-clean with
// the driver token migrating between goroutines.
func TestEngineMetrics(t *testing.T) {
	r := obs.NewRegistry()
	e := NewEngine(1)
	e.Observe(r)
	mb := NewMailbox[int](e, "mb")
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Sleep(Microsecond)
			mb.Put(i)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 50; i++ {
			if got := mb.Get(p); got != i {
				t.Errorf("got %d, want %d", got, i)
			}
			p.Yield()
		}
	})
	tm := e.After(Millisecond, func() { t.Error("cancelled timer fired") })
	tm.Stop()
	e.After(2*Millisecond, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Counters mirror the engine's internal tallies at snapshot time.
	r.Snapshot()

	val := func(name string) int64 {
		v, ok := r.CounterValue(name)
		if !ok {
			t.Fatalf("metric %s not registered", name)
		}
		return v
	}
	if val("sim.proc.spawns") != 2 {
		t.Fatalf("spawns = %d", val("sim.proc.spawns"))
	}
	if val("sim.events.cancelled") != 1 {
		t.Fatalf("cancelled = %d", val("sim.events.cancelled"))
	}
	disp := val("sim.events.dispatched")
	parts := val("sim.events.callbacks") + val("sim.proc.wakes.self") + val("sim.proc.switches")
	if disp == 0 || disp != parts {
		t.Fatalf("dispatched %d != callbacks+self+switches %d", disp, parts)
	}
	if sched := val("sim.events.scheduled"); sched < disp {
		t.Fatalf("scheduled %d < dispatched %d", sched, disp)
	}
	if val("sim.proc.switches") == 0 {
		t.Fatal("mailbox ping-pong recorded no goroutine switches")
	}
	if max, _ := r.GaugeValue("sim.heap.depth.max"); max == 0 {
		t.Fatal("heap depth high-water mark never moved")
	}
}

// TestEngineMetricsDeterministic runs the same seeded scenario twice
// and demands byte-identical metrics JSON — the determinism contract
// the whole observability layer rests on.
func TestEngineMetricsDeterministic(t *testing.T) {
	runOnce := func() []byte {
		r := obs.NewRegistry()
		e := NewEngine(7)
		e.Observe(r)
		res := NewResource(e, "res", 2)
		for w := 0; w < 4; w++ {
			e.Spawn("worker", func(p *Proc) {
				for i := 0; i < 20; i++ {
					res.Use(p, 1, Duration(e.Rand().Intn(50)+1)*Microsecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.WriteMetricsJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(runOnce(), runOnce()) {
		t.Fatal("same seed produced different metrics JSON")
	}
}

// TestProcSwitchZeroAllocDisabled asserts the engine's always-on
// tallies add zero allocations to the steady-state ProcSwitch path when
// no registry is attached — PR 1's zero-alloc scheduling must survive
// this layer.
func TestProcSwitchZeroAllocDisabled(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	stop := false
	e.Spawn("sleeper", func(p *Proc) {
		for !stop {
			p.Sleep(Microsecond)
		}
	})
	// Run past the spawn (which allocates the Proc) into steady state.
	if err := e.RunUntil(e.Now() + 10*Microsecond); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := e.RunUntil(e.Now() + 20*Microsecond); err != nil {
			t.Fatal(err)
		}
	})
	stop = true
	if allocs != 0 {
		t.Fatalf("disabled observability: ProcSwitch path allocated %.2f allocs/op, want 0", allocs)
	}
}

// BenchmarkProcSwitchObserved is BenchmarkProcSwitch with a live
// registry, quantifying the enabled-collector overhead (compare against
// ProcSwitch in BENCH_sim.json).
func BenchmarkProcSwitchObserved(b *testing.B) {
	e := NewEngine(1)
	e.Observe(obs.NewRegistry())
	n := b.N
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventThroughputObserved is BenchmarkEventThroughput with a
// live registry.
func BenchmarkEventThroughputObserved(b *testing.B) {
	e := NewEngine(1)
	e.Observe(obs.NewRegistry())
	defer e.Close()
	for i := 0; i < b.N; i++ {
		e.After(Microsecond, func() {})
		if e.Pending() > 10000 {
			if err := e.RunUntil(MaxTime); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.RunUntil(MaxTime); err != nil {
		b.Fatal(err)
	}
}
