package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestResourceSerialisesContention(t *testing.T) {
	e := NewEngine(1)
	disk := NewResource(e, "disk", 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("io%d", i), func(p *Proc) {
			disk.Use(p, 1, 10*Millisecond)
			finish = append(finish, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceCapacityAllowsParallelism(t *testing.T) {
	e := NewEngine(1)
	cpus := NewResource(e, "cpus", 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Spawn("job", func(p *Proc) {
			cpus.Use(p, 1, 10*Millisecond)
			finish = append(finish, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two run 0–10ms, two run 10–20ms.
	if finish[0] != 10*Millisecond || finish[1] != 10*Millisecond ||
		finish[2] != 20*Millisecond || finish[3] != 20*Millisecond {
		t.Fatalf("finish = %v", finish)
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Sleep(Duration(i) * Microsecond) // arrive in index order
			r.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(10 * Microsecond)
			r.Release(1)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestResourceAcquireTimeout(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	var got bool
	var at Time
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(100 * Microsecond)
		r.Release(1)
	})
	e.Spawn("waiter", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		got = r.AcquireTimeout(p, 1, 20*Microsecond)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("AcquireTimeout should have timed out")
	}
	if at != 21*Microsecond {
		t.Fatalf("timed out at %v, want 21µs", at)
	}
	if r.InUse() != 0 {
		t.Fatalf("in use = %d after run", r.InUse())
	}
}

func TestResourceAcquireTimeoutSucceedsWithinDeadline(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	var got bool
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(10 * Microsecond)
		r.Release(1)
	})
	e.Spawn("waiter", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		got = r.AcquireTimeout(p, 1, 50*Microsecond)
		if got {
			r.Release(1)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("acquire should have succeeded before the deadline")
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	e.Spawn("p", func(p *Proc) {
		r.Use(p, 1, 30*Microsecond)
		p.Sleep(70 * Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if u := r.Utilization(); u < 0.29 || u > 0.31 {
		t.Fatalf("utilization = %v, want ≈0.30", u)
	}
	if r.Acquires() != 1 {
		t.Fatalf("acquires = %d", r.Acquires())
	}
}

func TestResourceMisuseFailsRun(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	e.Spawn("p", func(p *Proc) {
		r.Release(1) // release without acquire
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected invariant failure")
	}
}

func TestMailboxDeliversFIFO(t *testing.T) {
	e := NewEngine(1)
	mb := NewMailbox[int](e, "mb")
	var got []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Get(p))
		}
	})
	e.Spawn("send", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			mb.Put(i)
			p.Sleep(Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("got %v", got)
	}
}

func TestMailboxBlocksUntilPut(t *testing.T) {
	e := NewEngine(1)
	mb := NewMailbox[string](e, "mb")
	var at Time
	e.Spawn("recv", func(p *Proc) {
		mb.Get(p)
		at = p.Now()
	})
	e.Spawn("send", func(p *Proc) {
		p.Sleep(99 * Microsecond)
		mb.Put("x")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 99*Microsecond {
		t.Fatalf("received at %v", at)
	}
}

func TestMailboxGetTimeout(t *testing.T) {
	e := NewEngine(1)
	mb := NewMailbox[int](e, "mb")
	var ok bool
	var at Time
	e.Spawn("recv", func(p *Proc) {
		_, ok = mb.GetTimeout(p, 10*Microsecond)
		at = p.Now()
	})
	e.Spawn("send", func(p *Proc) {
		p.Sleep(50 * Microsecond)
		mb.Put(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("expected timeout")
	}
	if at != 10*Microsecond {
		t.Fatalf("timed out at %v", at)
	}
	if mb.Len() != 1 {
		t.Fatalf("item should remain queued, len=%d", mb.Len())
	}
}

func TestMailboxTimeoutNotFiredOnDelivery(t *testing.T) {
	e := NewEngine(1)
	mb := NewMailbox[int](e, "mb")
	var v int
	var ok bool
	e.Spawn("recv", func(p *Proc) {
		v, ok = mb.GetTimeout(p, 100*Microsecond)
	})
	e.Spawn("send", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		mb.Put(7)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || v != 7 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
}

func TestMailboxTryGet(t *testing.T) {
	e := NewEngine(1)
	mb := NewMailbox[int](e, "mb")
	if _, ok := mb.TryGet(); ok {
		t.Fatal("TryGet on empty succeeded")
	}
	mb.Put(9)
	if v, ok := mb.TryGet(); !ok || v != 9 {
		t.Fatalf("TryGet = (%d,%v)", v, ok)
	}
	e.Close()
}

func TestMailboxMultipleWaitersFIFO(t *testing.T) {
	e := NewEngine(1)
	mb := NewMailbox[int](e, "mb")
	var got []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("r%d", i)
		e.Spawn(name, func(p *Proc) {
			v := mb.Get(p)
			got = append(got, fmt.Sprintf("%s=%d", name, v))
		})
	}
	e.Spawn("send", func(p *Proc) {
		p.Sleep(Microsecond)
		for i := 1; i <= 3; i++ {
			mb.Put(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[r0=1 r1=2 r2=3]" {
		t.Fatalf("got %v", got)
	}
}

func TestSignalBroadcastWakesAll(t *testing.T) {
	e := NewEngine(1)
	sig := NewSignal(e, "go")
	woke := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			sig.Wait(p)
			woke++
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		if sig.Waiting() != 5 {
			t.Errorf("waiting = %d", sig.Waiting())
		}
		sig.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 5 {
		t.Fatalf("woke = %d", woke)
	}
}

func TestSignalFireWakesOne(t *testing.T) {
	e := NewEngine(1)
	sig := NewSignal(e, "one")
	woke := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			sig.Wait(p)
			woke++
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(Microsecond)
		sig.Fire()
		p.Sleep(Microsecond)
		if woke != 1 {
			t.Errorf("after one Fire, woke = %d", woke)
		}
		sig.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Fatalf("woke = %d", woke)
	}
}

func TestSignalWaitTimeout(t *testing.T) {
	e := NewEngine(1)
	sig := NewSignal(e, "never")
	var ok bool
	e.Spawn("w", func(p *Proc) {
		ok = sig.WaitTimeout(p, 30*Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("expected timeout")
	}
	if sig.Waiting() != 0 {
		t.Fatal("timed-out waiter not removed")
	}
}

func TestWaitGroupBarrier(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e, "barrier")
	wg.Add(3)
	var done Time
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		done = p.Now()
	})
	for i := 1; i <= 3; i++ {
		d := Duration(i*10) * Microsecond
		e.Spawn("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 30*Microsecond {
		t.Fatalf("barrier released at %v, want 30µs", done)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e, "zero")
	passed := false
	e.Spawn("w", func(p *Proc) {
		wg.Wait(p)
		passed = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !passed {
		t.Fatal("Wait on zero WaitGroup blocked")
	}
}

// Property: for any set of jobs with positive durations on a capacity-1
// resource, total busy time equals the sum of durations and the last
// completion equals that sum (work conservation, no overlap).
func TestResourceWorkConservationProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 || len(durs) > 50 {
			return true
		}
		e := NewEngine(1)
		r := NewResource(e, "r", 1)
		var last Time
		var sum Duration
		for _, d := range durs {
			d := Duration(d%1000+1) * Microsecond
			sum += d
			e.Spawn("j", func(p *Proc) {
				r.Use(p, 1, d)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return last == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a mailbox delivers every value exactly once, in FIFO order,
// regardless of put/get interleaving.
func TestMailboxExactlyOnceProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		n := len(gaps)
		if n == 0 || n > 64 {
			return true
		}
		e := NewEngine(1)
		mb := NewMailbox[int](e, "mb")
		var got []int
		e.Spawn("recv", func(p *Proc) {
			for i := 0; i < n; i++ {
				got = append(got, mb.Get(p))
			}
		})
		e.Spawn("send", func(p *Proc) {
			for i, g := range gaps {
				p.Sleep(Duration(g) * Microsecond)
				mb.Put(i)
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
