package sim

import "fmt"

// killSentinel is the panic value used to unwind a process goroutine
// when the engine tears it down. It never escapes the package: Proc.run
// recovers it. This is internal control flow, not error signalling.
type killSentinel struct{}

// wake is the token a parked process receives when resumed.
type wake struct {
	kill    bool // engine teardown: unwind the goroutine
	timeout bool // the wait's deadline fired before the condition
	drive   bool // the driver token rides along: the receiver runs the
	// dispatch loop at its next park instead of handing control back
}

// Proc is a simulated process: a goroutine whose blocking operations
// (Sleep, Resource.Acquire, Mailbox.Get, Signal.Wait, ...) park it until
// the engine resumes it at a later virtual time. At most one process
// executes at any moment, so process code needs no locking around
// simulation state.
//
// Control transfers between goroutines by migrating a single "driver
// token": whichever goroutine holds it runs the engine's dispatch loop
// when its process parks. Waking another process is therefore one direct
// channel handoff, and a process woken by its own next event (the common
// Sleep/Yield case) resumes without any goroutine switch at all.
type Proc struct {
	eng     *Engine
	id      int
	name    string
	resume  chan wake
	done    bool
	driving bool // this goroutine holds the driver token
}

// Spawn starts body as a new simulated process at the current virtual
// time. The body runs when the engine reaches the scheduling event; it
// may block on simulation primitives and must not block on real OS
// resources. The returned Proc is also passed to body.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, body)
}

// SpawnAt is Spawn with an explicit start time, used by workload
// generators replaying traces.
func (e *Engine) SpawnAt(t Time, name string, body func(p *Proc)) *Proc {
	p := &Proc{eng: e, id: e.nextPID, name: name, resume: make(chan wake)}
	e.nextPID++
	e.At(t, func() {
		e.procs[p] = struct{}{}
		// Synchronous handoff: the new goroutine runs body immediately
		// (without the driver token) and hands control back here at its
		// first park or exit.
		go p.run(body)
		<-e.parked
	})
	return p
}

func (p *Proc) run(body func(p *Proc)) {
	defer func() {
		p.done = true
		delete(p.eng.procs, p)
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); !ok {
				// A real bug in process code: surface it as a run failure
				// instead of crashing the host test binary.
				p.eng.Fail(fmt.Errorf("sim: process %q panicked: %v", p.name, r))
			}
		}
		if p.driving {
			// This goroutine holds the driver token: keep the simulation
			// moving until the token can be handed to another process or
			// the run terminates.
			if _, res := p.eng.dispatch(nil); res == dispatchDone {
				p.eng.done <- struct{}{}
			}
		} else {
			// Woken synchronously (spawn start or teardown): hand control
			// back to the waiting caller.
			p.eng.parked <- struct{}{}
		}
	}()
	body(p)
}

// park blocks the process until a wake token arrives, yielding control
// back to the simulation. A driving process dispatches further events
// inline; a synchronously woken one hands control back to its waker.
func (p *Proc) park() wake {
	var w wake
	if p.driving {
		var res dispatchResult
		w, res = p.eng.dispatch(p)
		if res != dispatchWoken {
			if res == dispatchDone {
				p.eng.done <- struct{}{}
			}
			w = <-p.resume
		}
	} else {
		p.eng.parked <- struct{}{}
		w = <-p.resume
	}
	p.driving = w.drive
	if w.kill {
		panic(killSentinel{})
	}
	return w
}

// kill tears the process down during Engine.Close. The wake carries no
// driver token, so the unwinding goroutine hands control straight back.
func (p *Proc) kill() {
	if p.done {
		delete(p.eng.procs, p)
		return
	}
	p.resume <- wake{kill: true}
	<-p.eng.parked
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the engine-unique process id (assigned in spawn order).
func (p *Proc) ID() int { return p.id }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Sleep parks the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.wakeProcAt(p.eng.now+d, p)
	p.park()
}

// SleepUntil parks the process until virtual time t (no-op if t has
// passed).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.eng.now {
		return
	}
	p.eng.wakeProcAt(t, p)
	p.park()
}

// Yield reschedules the process at the current time behind already
// queued events, letting same-time work interleave fairly.
func (p *Proc) Yield() {
	p.eng.wakeProcAt(p.eng.now, p)
	p.park()
}

// Fail aborts the whole simulation with err; used when a process detects
// an invariant violation that invalidates the run.
func (p *Proc) Fail(err error) {
	p.eng.Fail(err)
	// Unwind this goroutine; the engine will return the failure.
	panic(killSentinel{})
}
