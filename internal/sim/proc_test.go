package sim

import (
	"fmt"
	"testing"
)

func TestProcSleepAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100 * Microsecond)
		woke = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 100*Microsecond {
		t.Fatalf("woke at %v, want 100µs", woke)
	}
}

func TestProcSleepSequence(t *testing.T) {
	e := NewEngine(1)
	var marks []Time
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Microsecond)
			marks = append(marks, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10 * Microsecond, 20 * Microsecond, 30 * Microsecond}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v", marks)
		}
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	e := NewEngine(1)
	var order []string
	mk := func(name string, period Duration) {
		e.Spawn(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(period)
				order = append(order, fmt.Sprintf("%s@%v", name, p.Now()))
			}
		})
	}
	mk("a", 10*Microsecond)
	mk("b", 15*Microsecond)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// At t=30 both wake; b's wake event was scheduled first (at t=15,
	// vs a's at t=20), so b runs first under (time, seq) ordering.
	want := "[a@10µs b@15µs a@20µs b@30µs a@30µs b@45µs]"
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestSpawnAtStartsLater(t *testing.T) {
	e := NewEngine(1)
	var started Time
	e.SpawnAt(5*Millisecond, "late", func(p *Proc) { started = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if started != 5*Millisecond {
		t.Fatalf("started at %v, want 5ms", started)
	}
}

func TestProcIDsAreSpawnOrdered(t *testing.T) {
	e := NewEngine(1)
	a := e.Spawn("a", func(p *Proc) {})
	b := e.Spawn("b", func(p *Proc) {})
	if a.ID() >= b.ID() {
		t.Fatalf("ids: a=%d b=%d", a.ID(), b.ID())
	}
	if a.Name() != "a" {
		t.Fatalf("name = %q", a.Name())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunKillsParkedProcs(t *testing.T) {
	e := NewEngine(1)
	cleaned := false
	e.Spawn("forever", func(p *Proc) {
		defer func() { cleaned = true }()
		sig := NewSignal(e, "never")
		sig.Wait(p) // never fired
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run at teardown")
	}
}

func TestProcPanicBecomesRunError(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("bad", func(p *Proc) {
		panic("kaboom")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestProcFailAbortsRun(t *testing.T) {
	e := NewEngine(1)
	reached := false
	e.Spawn("failer", func(p *Proc) {
		p.Fail(fmt.Errorf("invariant broken"))
		reached = true // must not execute
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected failure")
	}
	if reached {
		t.Fatal("code after Fail executed")
	}
}

func TestYieldRunsBehindQueuedWork(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(order); got != "[a1 b1 a2]" {
		t.Fatalf("order = %v", got)
	}
}

func TestSleepUntilPastIsNoop(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		p.SleepUntil(5 * Microsecond)
		if p.Now() != 10*Microsecond {
			t.Errorf("SleepUntil moved backwards: %v", p.Now())
		}
		p.SleepUntil(25 * Microsecond)
		if p.Now() != 25*Microsecond {
			t.Errorf("SleepUntil(25µs) woke at %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcsNoLeak(t *testing.T) {
	e := NewEngine(1)
	done := 0
	for i := 0; i < 500; i++ {
		d := Duration(i) * Microsecond
		e.Spawn("w", func(p *Proc) {
			p.Sleep(d)
			done++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 500 {
		t.Fatalf("done = %d", done)
	}
	if len(e.procs) != 0 {
		t.Fatalf("%d procs leaked", len(e.procs))
	}
}
