package sim

// Resource models a server with integer capacity — a CPU, a disk arm, a
// shared Ethernet segment, a switch port. Processes Acquire units, hold
// them for some virtual time, and Release them; contention produces the
// queueing delays the NOW paper reasons about. Waiters are served FIFO.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	queue    []*resWaiter

	// Usage accounting for utilisation reports.
	busy       Time // integral of inUse over time, in unit·ns
	lastChange Time
	acquires   int64
}

type resWaiter struct {
	p     *Proc
	n     int
	timer Timer
}

// NewResource creates a resource with the given capacity (units > 0).
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		capacity = 1
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.queue) }

func (r *Resource) account() {
	now := r.eng.Now()
	r.busy += Time(int64(r.inUse) * int64(now-r.lastChange))
	r.lastChange = now
}

// Acquire blocks p until n units are available and takes them.
func (r *Resource) Acquire(p *Proc, n int) {
	r.acquireDeadline(p, n, -1)
}

// AcquireTimeout is Acquire with a deadline; it reports whether the
// units were obtained (false means the wait timed out and nothing is
// held).
func (r *Resource) AcquireTimeout(p *Proc, n int, d Duration) bool {
	return r.acquireDeadline(p, n, d)
}

func (r *Resource) acquireDeadline(p *Proc, n int, d Duration) bool {
	// Guarded so the variadic boxing only happens on the failure path;
	// an unconditional invariant call allocates per acquire.
	if n <= 0 || n > r.capacity {
		r.eng.invariant(false, "resource %s: acquire %d of %d", r.name, n, r.capacity)
	}
	if len(r.queue) == 0 && r.inUse+n <= r.capacity {
		r.account()
		r.inUse += n
		r.acquires++
		return true
	}
	w := &resWaiter{p: p, n: n}
	r.queue = append(r.queue, w)
	if d >= 0 {
		w.timer = r.eng.procTimeoutAfter(d, p)
	}
	tok := p.park()
	if tok.timeout {
		// Deadline fired before a grant: dequeue ourselves (a grant would
		// have cancelled the timer, so we are still queued).
		r.remove(w)
		return false
	}
	return true
}

// Release returns n units and grants queued waiters in FIFO order.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		r.eng.invariant(false, "resource %s: release %d with %d in use", r.name, n, r.inUse)
	}
	r.account()
	r.inUse -= n
	r.grant()
}

func (r *Resource) grant() {
	for len(r.queue) > 0 {
		w := r.queue[0]
		if r.inUse+w.n > r.capacity {
			return
		}
		r.queue = r.queue[1:]
		w.timer.Stop()
		r.account()
		r.inUse += w.n
		r.acquires++
		r.eng.wakeProcAt(r.eng.now, w.p)
	}
}

func (r *Resource) remove(w *resWaiter) {
	for i, q := range r.queue {
		if q == w {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			return
		}
	}
}

// Use acquires n units, holds them for d, and releases them: the basic
// "service time at a station" operation.
func (r *Resource) Use(p *Proc, n int, d Duration) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// Utilization reports the time-averaged fraction of capacity in use
// since the engine started.
func (r *Resource) Utilization() float64 {
	now := r.eng.Now()
	if now == 0 {
		return 0
	}
	busy := r.busy + Time(int64(r.inUse)*int64(now-r.lastChange))
	return float64(busy) / (float64(now) * float64(r.capacity))
}

// Acquires returns the number of successful acquisitions, a throughput
// counter for experiments.
func (r *Resource) Acquires() int64 { return r.acquires }
