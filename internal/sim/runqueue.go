package sim

// eventRing is a growable power-of-two ring buffer holding the engine's
// same-time run queue: events scheduled at exactly the current virtual
// time (Yield, zero-delay After, wakes granted by Put/Release/Fire).
// Because the clock cannot move while such events are pending and seq
// numbers are assigned monotonically at scheduling, FIFO push/pop order
// *is* (at, seq) heap order — so these events bypass the heap entirely
// and cost O(1) to schedule and dispatch.
type eventRing struct {
	buf  []*event
	head int
	n    int
}

func (r *eventRing) len() int { return r.n }

func (r *eventRing) push(ev *event) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = ev
	r.n++
	ev.index = posRunq
}

func (r *eventRing) pop() *event {
	ev := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	ev.index = posPopped
	return ev
}

func (r *eventRing) peek() *event { return r.buf[r.head] }

func (r *eventRing) grow() {
	size := 2 * len(r.buf)
	if size == 0 {
		size = 64
	}
	buf := make([]*event, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}
