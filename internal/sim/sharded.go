package sim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the sharded event loop: N per-partition Engines
// advancing in parallel under a conservative-lookahead protocol, in the
// Chandy–Misra–Bryant tradition but windowed. Virtual time is cut into
// fixed windows of width W, where W is the minimum cross-partition
// message latency (for a netsim fabric, the wire latency — see
// netsim.NewSharded). A message sent while executing window k arrives no
// earlier than the start of window k+1, so a partition may execute
// window k as soon as every peer has finished window k-1; no rollback is
// ever needed.
//
// Determinism is the design center, and it comes from a deliberate
// split: the *partition map* is part of the workload configuration and
// never changes with core count, while the Workers knob only bounds how
// many partitions execute their windows concurrently. Each partition has
// its own Engine (own clock, queues, sequence numbers) and its own RNG
// stream split from the master seed, and cross-partition messages are
// injected at window boundaries in (At, Src, Seq) order. Every input a
// partition's engine ever sees is therefore a pure function of the seed
// and the workload — never of goroutine scheduling — which is what makes
// runs byte-identical at 1, 2, 4, or 8 workers and lets the race
// detector certify the memory model separately from the golden tests
// certifying the schedule.
//
// Horizon exchange is barrier-free: each partition publishes its horizon
// (the end of its last finished window) in an atomic, and peers spin on
// a cheap gate — blocking on a capacity-1 wake channel when the horizon
// is not yet reached — rather than rendezvousing at a central barrier.
// On dense topologies this degenerates to lockstep, which is exactly the
// conservative bound; on sparse lookahead matrices partitions slide past
// each other up to the pairwise latency.

// ShardedConfig configures a ShardedEngine.
type ShardedConfig struct {
	// Parts is the number of logical partitions. It is part of the
	// workload's deterministic identity: changing it changes the
	// schedule, so studies fix Parts and vary only Workers.
	Parts int
	// Workers bounds how many partitions execute a window at the same
	// wall-clock moment. 0 or >= Parts means fully parallel. Any value
	// produces the same simulation output.
	Workers int
	// Seed is the master seed; each partition's engine gets an
	// independent stream split from it (splitmix64 finalizer), so
	// partition RNG draws are unaffected by the draws of other
	// partitions.
	Seed int64
	// Window is the conservative lookahead W: the minimum virtual time
	// for a cross-partition message to arrive. Messages sent in window k
	// must arrive at or after the start of window k+1; Send enforces
	// this. Must be > 0.
	Window Duration
}

// ShardMsg is a cross-partition message: an opaque payload to be
// delivered to the destination partition at virtual time At. Seq is
// assigned per source partition in send order; (At, Src, Seq) is the
// total order in which the destination injects messages, which is what
// keeps the merge deterministic.
type ShardMsg struct {
	At   Time
	Src  int
	Seq  uint64
	Data any
}

// shardMailbox is one (src part → dst part) lane. The sender appends
// under a mutex and never blocks — a bounded channel here can deadlock
// when two partitions flood each other mid-window — and the receiver
// drains by swapping the slice out. Single producer, single consumer:
// the mutex is uncontended except at the handoff instant.
type shardMailbox struct {
	mu  sync.Mutex
	buf []ShardMsg
}

type shardPart struct {
	id  int
	eng *Engine

	// horizon is the partition's published progress: the start of the
	// window it will execute next (equivalently, the end of the last
	// finished one). Peers gate on it.
	horizon atomic.Int64
	// wake is pinged (non-blocking, capacity 1) whenever a peer
	// publishes a new horizon or hands over a message, so gate waits
	// park instead of spinning.
	wake chan struct{}

	// in[src] is the mailbox for messages from partition src.
	in []shardMailbox
	// staged holds drained-but-not-yet-due messages, sorted on demand.
	staged []ShardMsg
	// sendSeq numbers this partition's outgoing messages.
	sendSeq uint64

	deliver func(ShardMsg)

	next Time // start of the next window to execute

	// Deterministic tallies (read after Run or from Observe samplers on
	// the coordinating goroutine).
	sent, recv              int64
	windowsRun, windowsIdle int64
	// stalls counts gate waits that actually parked. Wall-clock timing
	// dependent — exported via Stats only, never into a registry.
	stalls int64

	err error
}

// ShardedEngine coordinates Parts engines running on their own
// goroutines. Construct with NewShardedEngine, wire deliver callbacks
// and workload processes onto the per-partition engines, then call Run.
type ShardedEngine struct {
	cfg   ShardedConfig
	parts []*shardPart
	// look[q][p] is how far ahead of partition p's window start
	// partition q must have published for p to proceed: p may run
	// window [s, s+W) once horizon(q) >= s+W-look[q][p]. Uniform W by
	// default; SetLookahead widens individual pairs.
	look [][]Duration

	sem chan struct{} // worker tokens; nil when fully parallel

	// stopAt is the start of the earliest window in which any partition
	// stopped (Engine.Stop/Fail inside an event, or a RunUntil error).
	// Peers refuse to *begin* any later window, so every partition
	// deterministically finishes exactly the stopping window and no
	// more. MaxTime while running.
	stopAt atomic.Int64
	// doneFlag is set once the idle vote (below) succeeds or an external
	// Stop aborts the run.
	doneFlag atomic.Bool
	extStop  atomic.Bool

	// Idle vote: a partition that begins window s with no live events,
	// no staged messages, and empty mailboxes votes for s. The horizon
	// gates guarantee all votes for window s land before any vote for
	// s+1, so n votes for one window mean the whole simulation was
	// simultaneously empty at its start — with inflight (sends not yet
	// drained) zero, nothing can ever wake it again.
	idleMu   sync.Mutex
	voteW    Time
	voteN    int
	inflight atomic.Int64

	wg      sync.WaitGroup
	started bool
	closed  bool
}

// splitSeed derives the per-partition seed stream from the master seed
// using the splitmix64 finalizer, so neighboring seeds yield decorrelated
// streams and partition i's stream never depends on Parts or Workers.
func splitSeed(seed int64, i int) int64 {
	z := uint64(seed) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// NewShardedEngine builds the partition engines and mailboxes. Panics on
// a non-positive Parts or Window: both are workload identity, not tuning.
func NewShardedEngine(cfg ShardedConfig) *ShardedEngine {
	if cfg.Parts <= 0 {
		panic("sim: ShardedConfig.Parts must be >= 1")
	}
	if cfg.Window <= 0 {
		panic("sim: ShardedConfig.Window must be > 0 (conservative lookahead)")
	}
	if cfg.Workers <= 0 || cfg.Workers > cfg.Parts {
		cfg.Workers = cfg.Parts
	}
	s := &ShardedEngine{cfg: cfg}
	s.parts = make([]*shardPart, cfg.Parts)
	s.look = make([][]Duration, cfg.Parts)
	for i := range s.parts {
		s.parts[i] = &shardPart{
			id:   i,
			eng:  NewEngine(splitSeed(cfg.Seed, i)),
			wake: make(chan struct{}, 1),
			in:   make([]shardMailbox, cfg.Parts),
		}
		s.look[i] = make([]Duration, cfg.Parts)
		for j := range s.look[i] {
			s.look[i][j] = cfg.Window
		}
	}
	if cfg.Workers < cfg.Parts {
		s.sem = make(chan struct{}, cfg.Workers)
		for i := 0; i < cfg.Workers; i++ {
			s.sem <- struct{}{}
		}
	}
	s.stopAt.Store(int64(MaxTime))
	s.voteW = -1
	return s
}

// Parts returns the number of partitions.
func (s *ShardedEngine) Parts() int { return s.cfg.Parts }

// Workers returns the effective worker-goroutine bound.
func (s *ShardedEngine) Workers() int { return s.cfg.Workers }

// Window returns the conservative lookahead window.
func (s *ShardedEngine) Window() Duration { return s.cfg.Window }

// Engine returns partition p's engine. All pre-Run setup (spawning
// processes, attaching fabrics) goes through it; after Run starts, only
// code executing on that partition's goroutine may touch it.
func (s *ShardedEngine) Engine(p int) *Engine { return s.parts[p].eng }

// OnDeliver installs the destination-side injector for partition p.
// During Run it is called on p's goroutine, engine quiescent, in
// (At, Src, Seq) order; it typically schedules an event via AtArg. Must
// be set before Run for any partition that can receive messages.
func (s *ShardedEngine) OnDeliver(p int, fn func(ShardMsg)) { s.parts[p].deliver = fn }

// SetLookahead declares that messages from partition src to partition
// dst arrive at least d after the send. d below the global window is
// ignored (the window is already the conservative floor); larger d lets
// dst run further ahead of src. Call before Run.
func (s *ShardedEngine) SetLookahead(src, dst int, d Duration) {
	if d > s.look[src][dst] {
		s.look[src][dst] = d
	}
}

// Send hands a message to partition dst, to be injected at virtual time
// at. It must be called from code executing on partition src (inside an
// event or process of src's engine). at must respect the lookahead:
// at >= the end of src's current window.
func (s *ShardedEngine) Send(src, dst int, at Time, data any) {
	p := s.parts[src]
	if at < p.eng.now+s.look[src][dst] {
		panic(fmt.Sprintf("sim: cross-shard send %d->%d at %v violates lookahead (now %v + %v)",
			src, dst, at, p.eng.now, s.look[src][dst]))
	}
	p.sendSeq++
	m := ShardMsg{At: at, Src: src, Seq: p.sendSeq, Data: data}
	p.sent++
	s.inflight.Add(1)
	d := s.parts[dst]
	mb := &d.in[src]
	mb.mu.Lock()
	mb.buf = append(mb.buf, m)
	mb.mu.Unlock()
	ping(d.wake)
}

func ping(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

func (s *ShardedEngine) pingAll(except int) {
	for _, p := range s.parts {
		if p.id != except {
			ping(p.wake)
		}
	}
}

// drain moves every queued inbound message into p.staged. Returns the
// number drained.
func (s *ShardedEngine) drain(p *shardPart) int {
	n := 0
	for src := range p.in {
		mb := &p.in[src]
		mb.mu.Lock()
		buf := mb.buf
		mb.buf = nil
		mb.mu.Unlock()
		if len(buf) > 0 {
			p.staged = append(p.staged, buf...)
			n += len(buf)
		}
	}
	if n > 0 {
		s.inflight.Add(int64(-n))
	}
	return n
}

func (p *shardPart) inboxesEmpty() bool {
	for src := range p.in {
		mb := &p.in[src]
		mb.mu.Lock()
		empty := len(mb.buf) == 0
		mb.mu.Unlock()
		if !empty {
			return false
		}
	}
	return true
}

// noteStop records that partition p stopped while executing the window
// starting at wStart: peers must not begin any window after wStart.
func (s *ShardedEngine) noteStop(wStart Time) {
	for {
		cur := s.stopAt.Load()
		if int64(wStart) >= cur || s.stopAt.CompareAndSwap(cur, int64(wStart)) {
			break
		}
	}
	s.pingAll(-1)
}

// Stop aborts the run from outside the simulation (e.g. a wall-clock
// watchdog). Unlike Engine.Stop from within an event — which is
// deterministic, because peers finish exactly the stopping window — an
// external Stop cuts in at an arbitrary wall-clock moment and the final
// state depends on how far each partition got. Use it only on abort
// paths that discard results.
func (s *ShardedEngine) Stop() {
	s.extStop.Store(true)
	s.doneFlag.Store(true)
	s.pingAll(-1)
}

func (s *ShardedEngine) acquire() {
	if s.sem != nil {
		<-s.sem
	}
}

func (s *ShardedEngine) release() {
	if s.sem != nil {
		s.sem <- struct{}{}
	}
}

// voteIdle records that partition p found nothing to do at the window
// starting at w. Reports whether the whole simulation is now known idle.
func (s *ShardedEngine) voteIdle(w Time) bool {
	s.idleMu.Lock()
	defer s.idleMu.Unlock()
	if w > s.voteW {
		s.voteW, s.voteN = w, 0
	}
	if w == s.voteW {
		s.voteN++
		if s.voteN == len(s.parts) && s.inflight.Load() == 0 {
			return true
		}
	}
	return false
}

// Run drives every partition until the whole simulation drains, any
// partition stops or fails, or the clock passes limit. It may be called
// once. On return all partition goroutines have exited; the per-
// partition engines still hold their parked processes until Close.
func (s *ShardedEngine) Run(limit Time) error {
	if s.started {
		return errors.New("sim: ShardedEngine.Run called twice")
	}
	if s.closed {
		return errors.New("sim: ShardedEngine already closed")
	}
	s.started = true
	s.wg.Add(len(s.parts))
	for _, p := range s.parts {
		go s.runPart(p, limit)
	}
	s.wg.Wait()
	// Failure beats stop beats success, and lower partition ids beat
	// higher, so the reported error is deterministic.
	var stopped bool
	for _, p := range s.parts {
		if p.err == nil {
			continue
		}
		if errors.Is(p.err, ErrStopped) {
			stopped = true
			continue
		}
		return p.err
	}
	if stopped || s.extStop.Load() {
		return ErrStopped
	}
	return nil
}

// runPart is one partition's driver loop. Each iteration handles the
// window [p.next, p.next+W): wait for peer horizons, drain and inject
// due messages, run the engine to the window end (skipping the run
// entirely when the window is empty — this also keeps the engine clock
// from advancing through idle windows, which would leak the run's
// wall-clock-dependent shutdown point into sim.time.now.ns), then
// publish the new horizon.
func (s *ShardedEngine) runPart(p *shardPart, limit Time) {
	defer func() {
		// Release peers blocked on our horizon whatever the exit path.
		p.horizon.Store(int64(MaxTime))
		s.pingAll(p.id)
		s.wg.Done()
	}()
	W := s.cfg.Window
	for {
		wStart := p.next
		if wStart > limit || s.doneFlag.Load() || Time(s.stopAt.Load()) < wStart {
			return
		}
		wEnd := wStart + W
		if wEnd < wStart || wEnd > limit {
			// Overflow or final partial window: clamp to the limit.
			wEnd = limit
			if wEnd == MaxTime {
				wEnd = MaxTime - 1
			}
			wEnd++
		}
		// Gate: peer q must have published through wEnd - look[q][p]
		// before we may execute [wStart, wEnd).
		for q, qp := range s.parts {
			if q == p.id {
				continue
			}
			need := wEnd - s.look[q][p.id]
			if need <= 0 {
				continue
			}
			first := true
			for Time(qp.horizon.Load()) < need {
				if s.doneFlag.Load() || Time(s.stopAt.Load()) < wStart {
					return
				}
				if first {
					p.stalls++
					first = false
				}
				<-p.wake
			}
		}
		if s.doneFlag.Load() || Time(s.stopAt.Load()) < wStart {
			return
		}
		// Inject messages due this window, in (At, Src, Seq) order.
		s.drain(p)
		injected := false
		if len(p.staged) > 0 {
			sort.Slice(p.staged, func(i, j int) bool {
				a, b := p.staged[i], p.staged[j]
				if a.At != b.At {
					return a.At < b.At
				}
				if a.Src != b.Src {
					return a.Src < b.Src
				}
				return a.Seq < b.Seq
			})
			k := 0
			for k < len(p.staged) && p.staged[k].At < wEnd {
				k++
			}
			if k > 0 {
				for i := 0; i < k; i++ {
					m := p.staged[i]
					p.recv++
					if p.deliver == nil {
						p.err = fmt.Errorf("sim: partition %d received a cross-shard message with no OnDeliver handler", p.id)
						s.noteStop(wStart)
						return
					}
					p.deliver(m)
				}
				p.staged = append(p.staged[:0], p.staged[k:]...)
				injected = true
			}
		}
		switch {
		case p.eng.NextLive() < wEnd:
			s.acquire()
			err := p.eng.RunUntil(wEnd - 1)
			s.release()
			p.windowsRun++
			if err != nil {
				p.err = err
				s.noteStop(wStart)
				return
			}
		case !injected && len(p.staged) == 0 && p.inboxesEmpty() &&
			p.eng.NextLive() == MaxTime:
			// Nothing live anywhere in this partition — not now, not in
			// any future window. Vote; if every partition is idle at this
			// same window with no message in flight, the simulation is
			// over. A finite NextLive beyond this window falls through to
			// the default branch instead: future work is still work. The
			// idle tally is bumped before the vote so the (wall-clock-
			// arbitrary) partition that happens to cast the winning vote
			// counts this window exactly like its peers do.
			p.windowsIdle++
			if s.voteIdle(wStart) {
				s.doneFlag.Store(true)
				s.pingAll(p.id)
				return
			}
		default:
			// Future work only (staged messages or events beyond this
			// window): the window itself is empty, skip the engine run.
			p.windowsIdle++
		}
		p.next = wEnd
		p.horizon.Store(int64(wEnd))
		s.pingAll(p.id)
	}
}

// Close tears down every partition engine (ascending partition id, so
// teardown order is deterministic). Idempotent.
func (s *ShardedEngine) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, p := range s.parts {
		p.eng.Close()
	}
}

// ShardPartStats is one partition's deterministic tally block.
type ShardPartStats struct {
	Events      uint64 // events scheduled on the partition's engine
	Sent        int64  // cross-shard messages sent
	Recv        int64  // cross-shard messages injected
	WindowsRun  int64  // windows that executed events
	WindowsIdle int64  // windows skipped as empty
	Now         Time   // partition clock at exit
}

// ShardedStats is a post-Run snapshot. Everything except Stalls is a
// pure function of seed and workload; Stalls counts gate waits that
// parked, which depends on wall-clock interleaving and must never be
// written into a metrics registry (registries are golden-gated).
type ShardedStats struct {
	Parts, Workers int
	Window         Duration
	Sent, Recv     int64
	WindowsRun     int64
	WindowsIdle    int64
	Stalls         int64
	PerPart        []ShardPartStats
}

// Stats returns the run's tallies. Call after Run has returned.
func (s *ShardedEngine) Stats() ShardedStats {
	st := ShardedStats{Parts: s.cfg.Parts, Workers: s.cfg.Workers, Window: s.cfg.Window}
	for _, p := range s.parts {
		pp := ShardPartStats{
			Events:      p.eng.seq,
			Sent:        p.sent,
			Recv:        p.recv,
			WindowsRun:  p.windowsRun,
			WindowsIdle: p.windowsIdle,
			Now:         p.eng.now,
		}
		st.Sent += p.sent
		st.Recv += p.recv
		st.WindowsRun += p.windowsRun
		st.WindowsIdle += p.windowsIdle
		st.Stalls += p.stalls
		st.PerPart = append(st.PerPart, pp)
	}
	return st
}
