package sim

import (
	"strconv"

	"github.com/nowproject/now/internal/obs"
)

// Observe attaches a metrics registry to the sharded driver. Everything
// registered here is a pure function of seed and workload — per-PARTITION
// tallies keyed p0..pN, never per-worker — so the export is byte-identical
// across Workers settings and safe for the golden determinism gates.
// Deliberately absent: the worker count, and the horizon-stall tally
// (both wall-clock artifacts; read them from Stats instead).
//
// Metrics (names per docs/OBSERVABILITY.md):
//
//	sim.shard.parts            partition count (gauge)
//	sim.shard.window.ns        conservative lookahead window (gauge)
//	sim.shard.events{pI}       events scheduled on partition I's engine
//	sim.shard.msgs.sent{pI}    cross-shard messages sent by partition I
//	sim.shard.msgs.recv{pI}    cross-shard messages injected into I
//	sim.shard.msgs.sent.total  sum over partitions
//	sim.shard.msgs.recv.total  sum over partitions
//	sim.shard.windows.run      windows that executed events (all parts)
//	sim.shard.windows.idle     windows skipped as empty (all parts)
//
// The samplers read partition state, so Snapshot may only run while the
// simulation is quiescent: before Run, or after Run has returned.
func (s *ShardedEngine) Observe(r *obs.Registry) {
	if r == nil {
		return
	}
	labels := make([]string, s.cfg.Parts)
	for i := range labels {
		labels[i] = "p" + strconv.Itoa(i)
	}
	r.SetClock(func() obs.Time {
		var t Time
		for _, p := range s.parts {
			if p.eng.now > t {
				t = p.eng.now
			}
		}
		return int64(t)
	})
	parts := r.Gauge("sim.shard.parts")
	window := r.Gauge("sim.shard.window.ns")
	events := r.CounterVec("sim.shard.events", labels)
	sent := r.CounterVec("sim.shard.msgs.sent", labels)
	recv := r.CounterVec("sim.shard.msgs.recv", labels)
	sentTot := r.Counter("sim.shard.msgs.sent.total")
	recvTot := r.Counter("sim.shard.msgs.recv.total")
	wrun := r.Counter("sim.shard.windows.run")
	widle := r.Counter("sim.shard.windows.idle")
	type partLast struct {
		events, sent, recv, wrun, widle int64
	}
	last := make([]partLast, s.cfg.Parts)
	r.OnSample(func() {
		parts.Set(int64(s.cfg.Parts))
		window.Set(int64(s.cfg.Window))
		for i, p := range s.parts {
			l := &last[i]
			ev := int64(p.eng.seq)
			events.At(i).Add(ev - l.events)
			sent.At(i).Add(p.sent - l.sent)
			recv.At(i).Add(p.recv - l.recv)
			sentTot.Add(p.sent - l.sent)
			recvTot.Add(p.recv - l.recv)
			wrun.Add(p.windowsRun - l.wrun)
			widle.Add(p.windowsIdle - l.widle)
			l.events, l.sent, l.recv = ev, p.sent, p.recv
			l.wrun, l.widle = p.windowsRun, p.windowsIdle
		}
	})
}

// Instrument is Observe under the facade's Instrumentable name.
func (s *ShardedEngine) Instrument(r *obs.Registry) { s.Observe(r) }
