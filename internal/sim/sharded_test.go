package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// ringMsg is the payload forwarded around the partition ring in tests.
type ringMsg struct {
	hops int
	tag  int
}

// runRing builds a Parts-partition workload that exercises every sharded
// code path — local events, RNG draws, cross-partition sends from both
// processes and event callbacks, message forwarding chains — and returns
// a per-partition log of everything that happened plus the run error and
// stats. The log is a pure function of (parts, workers-independent
// schedule), so tests compare it byte-for-byte across Workers settings.
func runRing(t *testing.T, parts, workers, rounds int, seed int64, stopAt Time) ([][]string, ShardedStats, error) {
	t.Helper()
	const W = 5 * Microsecond
	s := NewShardedEngine(ShardedConfig{Parts: parts, Workers: workers, Seed: seed, Window: W})
	defer s.Close()
	logs := make([][]string, parts)
	for i := 0; i < parts; i++ {
		i := i
		e := s.Engine(i)
		s.OnDeliver(i, func(m ShardMsg) {
			e.AtArg(m.At, func(a any) {
				mm := a.(ShardMsg)
				rm := mm.Data.(ringMsg)
				logs[i] = append(logs[i], fmt.Sprintf("%d recv@%d src=%d seq=%d hops=%d tag=%d",
					i, int64(e.Now()), mm.Src, mm.Seq, rm.hops, rm.tag))
				if rm.hops > 0 {
					// Forward from inside an event callback.
					s.Send(i, (i+1)%parts, e.Now()+W+Duration(rm.tag%3)*Microsecond,
						ringMsg{hops: rm.hops - 1, tag: rm.tag})
				}
			}, m)
		})
		e.Spawn(fmt.Sprintf("pump-%d", i), func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Sleep(Duration(1+e.Rand().Intn(7)) * Microsecond)
				logs[i] = append(logs[i], fmt.Sprintf("%d round=%d t=%d", i, r, int64(p.Now())))
				s.Send(i, (i+1)%parts, p.Now()+W, ringMsg{hops: parts + 1, tag: i*1000 + r})
			}
		})
		if stopAt > 0 && i == 0 {
			e.At(stopAt, func() { e.Stop() })
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Run(MaxTime) }()
	select {
	case err := <-errc:
		return logs, s.Stats(), err
	case <-time.After(30 * time.Second):
		t.Fatal("sharded run deadlocked")
		return nil, ShardedStats{}, nil
	}
}

// statsKey strips the wall-clock-dependent Stalls field so the rest of
// the stats block can be compared across worker counts.
func statsKey(st ShardedStats) string {
	st.Stalls = 0
	st.Workers = 0
	return fmt.Sprintf("%+v", st)
}

// TestShardedDeterminismAcrossWorkers is the heart of the design: the
// same (parts, seed) workload must produce identical logs and tallies
// whether the partitions run on 1 worker or many.
func TestShardedDeterminismAcrossWorkers(t *testing.T) {
	const parts = 4
	baseLogs, baseStats, err := runRing(t, parts, 1, 6, 42, 0)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	if baseStats.Sent == 0 || baseStats.Recv != baseStats.Sent {
		t.Fatalf("ring should send and fully deliver: %+v", baseStats)
	}
	for _, workers := range []int{2, 4} {
		logs, stats, err := runRing(t, parts, workers, 6, 42, 0)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(logs, baseLogs) {
			t.Errorf("workers=%d: logs diverge from workers=1", workers)
		}
		if statsKey(stats) != statsKey(baseStats) {
			t.Errorf("workers=%d: stats diverge:\n  %s\n  %s", workers, statsKey(stats), statsKey(baseStats))
		}
	}
	// Different seed must actually change the schedule (guards against a
	// workload that ignores its RNG and trivially "stays deterministic").
	otherLogs, _, err := runRing(t, parts, 2, 6, 43, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(otherLogs, baseLogs) {
		t.Error("different seed produced identical logs; workload not exercising RNG")
	}
}

// TestShardedStopMidDrain pins the Engine.Stop-under-sharding semantics:
// a Stop fired inside one partition's event stream quiesces every peer
// without deadlocking the horizon gates, peers finish exactly the
// stopping window, and the final state is identical at any worker count.
func TestShardedStopMidDrain(t *testing.T) {
	// 23µs is mid-window (W=5µs) while ring traffic is still in flight,
	// so peers have staged and in-flight messages when the stop lands.
	const stopAt = 23 * Microsecond
	baseLogs, baseStats, err := runRing(t, 4, 1, 50, 7, stopAt)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
	if baseStats.Sent == baseStats.Recv {
		t.Logf("note: no messages were in flight at stop (sent=%d recv=%d)", baseStats.Sent, baseStats.Recv)
	}
	for _, workers := range []int{2, 4} {
		logs, stats, err := runRing(t, 4, workers, 50, 7, stopAt)
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("workers=%d: want ErrStopped, got %v", workers, err)
		}
		if !reflect.DeepEqual(logs, baseLogs) {
			t.Errorf("workers=%d: stop-point logs diverge from workers=1", workers)
		}
		if statsKey(stats) != statsKey(baseStats) {
			t.Errorf("workers=%d: stop-point stats diverge:\n  %s\n  %s", workers, statsKey(stats), statsKey(baseStats))
		}
	}
}

// TestShardedExternalStop checks the non-deterministic abort path: an
// external Stop terminates the run promptly with ErrStopped.
func TestShardedExternalStop(t *testing.T) {
	const W = 5 * Microsecond
	s := NewShardedEngine(ShardedConfig{Parts: 2, Workers: 2, Seed: 1, Window: W})
	defer s.Close()
	for i := 0; i < 2; i++ {
		i := i
		e := s.Engine(i)
		s.OnDeliver(i, func(m ShardMsg) {
			e.AtArg(m.At, func(a any) {
				mm := a.(ShardMsg)
				// Ping-pong forever.
				s.Send(i, 1-i, e.Now()+W, mm.Data)
			}, m)
		})
		e.Spawn("seed", func(p *Proc) {
			s.Send(i, 1-i, p.Now()+W, ringMsg{})
		})
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Run(MaxTime) }()
	time.Sleep(10 * time.Millisecond)
	s.Stop()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("want ErrStopped, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("external Stop did not terminate the run")
	}
}

// TestShardedIdleTermination: a workload that goes fully quiet must end
// the run via the idle vote, not hang in empty windows, even when
// cancelled timers still sit in the queues.
func TestShardedIdleTermination(t *testing.T) {
	const W = 5 * Microsecond
	s := NewShardedEngine(ShardedConfig{Parts: 3, Workers: 3, Seed: 9, Window: W})
	defer s.Close()
	for i := 0; i < 3; i++ {
		e := s.Engine(i)
		s.OnDeliver(i, func(m ShardMsg) {})
		e.Spawn("burst", func(p *Proc) {
			for r := 0; r < 4; r++ {
				// Long-deadline timers cancelled immediately: these are
				// the AM completion-guard pattern that must not keep the
				// windowed loop crawling until the deadline.
				tm := e.After(10*Second, func() {})
				p.Sleep(3 * Microsecond)
				tm.Stop()
			}
		})
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Run(MaxTime) }()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("idle workload did not terminate")
	}
	st := s.Stats()
	for i, pp := range st.PerPart {
		if pp.Now > 30*Microsecond {
			t.Errorf("partition %d clock ran to %v; cancelled timers not pruned from idle detection", i, pp.Now)
		}
	}
}

// TestNextLive covers the cancelled-head pruning the sharded driver
// relies on for idle detection.
func TestNextLive(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	if got := e.NextLive(); got != MaxTime {
		t.Fatalf("empty engine NextLive = %v, want MaxTime", got)
	}
	tm1 := e.At(10*Microsecond, func() {})
	tm2 := e.At(20*Microsecond, func() {})
	if got := e.NextLive(); got != 10*Microsecond {
		t.Fatalf("NextLive = %v, want 10µs", got)
	}
	tm1.Stop()
	if got := e.NextLive(); got != 20*Microsecond {
		t.Fatalf("after cancelling head, NextLive = %v, want 20µs", got)
	}
	tm2.Stop()
	if got := e.NextLive(); got != MaxTime {
		t.Fatalf("all cancelled: NextLive = %v, want MaxTime", got)
	}
	if e.Pending() != 0 {
		t.Fatalf("cancelled heads should be reaped, Pending = %d", e.Pending())
	}
}

// TestShardedLookaheadViolation: a send that arrives inside the sender's
// own window is a protocol bug and must panic loudly.
func TestShardedLookaheadViolation(t *testing.T) {
	const W = 5 * Microsecond
	s := NewShardedEngine(ShardedConfig{Parts: 2, Workers: 1, Seed: 1, Window: W})
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead-violating Send did not panic")
		}
	}()
	s.Send(0, 1, 1*Microsecond, nil) // < now(0) + W
}
