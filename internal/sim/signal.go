package sim

// Signal is a condition-variable-like primitive: processes Wait on it
// and are released by Fire (one) or Broadcast (all). Unlike a condition
// variable there is no associated lock — the engine's run-to-park
// execution model already serialises state access.
type Signal struct {
	eng     *Engine
	name    string
	waiters []*sigWaiter
}

type sigWaiter struct {
	p     *Proc
	timer Timer
}

// NewSignal creates a signal on e.
func NewSignal(e *Engine, name string) *Signal {
	return &Signal{eng: e, name: name}
}

// Wait parks p until the signal fires for it.
func (s *Signal) Wait(p *Proc) {
	s.waitDeadline(p, -1)
}

// WaitTimeout is Wait with a deadline; it reports whether the signal
// (rather than the deadline) woke the process.
func (s *Signal) WaitTimeout(p *Proc, d Duration) bool {
	return s.waitDeadline(p, d)
}

func (s *Signal) waitDeadline(p *Proc, d Duration) bool {
	w := &sigWaiter{p: p}
	s.waiters = append(s.waiters, w)
	if d >= 0 {
		w.timer = s.eng.procTimeoutAfter(d, p)
	}
	tok := p.park()
	if tok.timeout {
		// Deadline fired before Fire/Broadcast reached us; a release
		// would have cancelled the timer, so we are still in the list.
		s.removeWaiter(w)
		return false
	}
	return true
}

// Fire releases the longest-waiting process, if any.
func (s *Signal) Fire() {
	if len(s.waiters) == 0 {
		return
	}
	w := s.waiters[0]
	s.waiters = s.waiters[1:]
	s.release(w)
}

// Broadcast releases every waiting process in FIFO order.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		s.release(w)
	}
}

func (s *Signal) release(w *sigWaiter) {
	w.timer.Stop()
	s.eng.wakeProcAt(s.eng.now, w.p)
}

// Waiting returns the number of parked waiters.
func (s *Signal) Waiting() int { return len(s.waiters) }

func (s *Signal) removeWaiter(w *sigWaiter) {
	for i, q := range s.waiters {
		if q == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// WaitGroup counts outstanding activities and lets a process wait for
// the count to drain — the simulated analogue of sync.WaitGroup, used by
// barriers in the parallel application kernels.
type WaitGroup struct {
	eng   *Engine
	count int
	sig   *Signal
}

// NewWaitGroup creates a WaitGroup on e.
func NewWaitGroup(e *Engine, name string) *WaitGroup {
	return &WaitGroup{eng: e, sig: NewSignal(e, name)}
}

// Add increments the counter by delta (which may be negative, as in
// sync.WaitGroup.Done).
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	wg.eng.invariant(wg.count >= 0, "waitgroup went negative")
	if wg.count == 0 {
		wg.sig.Broadcast()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait parks p until the counter reaches zero (returns immediately if it
// already is).
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.count > 0 {
		wg.sig.Wait(p)
	}
}

// Count returns the current counter value.
func (wg *WaitGroup) Count() int { return wg.count }
