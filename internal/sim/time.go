// Package sim provides a deterministic discrete-event simulation engine.
//
// Every NOW subsystem in this repository — network fabrics, disks, CPUs,
// protocol stacks, schedulers, file systems — runs as ordinary Go code on
// top of this engine, with *time* virtualised. The engine maintains a
// single virtual clock and an event queue ordered by (time, sequence
// number); exactly one simulated process runs at any instant, so a run
// with a fixed RNG seed is bit-for-bit reproducible.
//
// The programming model is process-oriented (in the SimPy/CSIM
// tradition): a Proc is a goroutine that alternates between running and
// being parked on a primitive (Sleep, Resource, Mailbox, Signal). The
// engine resumes parked processes at the virtual times their wake events
// fire.
//
// Engine.Observe attaches an internal/obs metrics registry: event and
// process-switch counters, queue-depth high-water marks, and sampled
// engine state, all keyed to the virtual clock. With no registry
// attached (the default), the hot path is untouched — see
// docs/OBSERVABILITY.md.
package sim

import (
	"fmt"
	"strconv"
)

// Time is a point in virtual time, measured in nanoseconds from the
// start of the simulation. It is deliberately a distinct type from
// time.Duration so that wall-clock and virtual time cannot be mixed by
// accident, but the unit (ns) and the constants below match the time
// package so conversions are mechanical.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations, mirroring package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// MaxTime is the largest representable virtual time. RunUntil(MaxTime)
// drains every event.
const MaxTime Time = 1<<63 - 1

// Microseconds reports t as a floating-point count of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds reports t as a floating-point count of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point count of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "456µs" or "2.8ms".
func (t Time) String() string {
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	switch {
	case t == 0:
		return "0s"
	case t < Microsecond:
		return neg + strconv.FormatInt(int64(t), 10) + "ns"
	case t < Millisecond:
		return neg + trimFloat(float64(t)/float64(Microsecond)) + "µs"
	case t < Second:
		return neg + trimFloat(float64(t)/float64(Millisecond)) + "ms"
	default:
		return neg + trimFloat(float64(t)/float64(Second)) + "s"
	}
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 3, 64)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// Scale returns t scaled by the dimensionless factor f, rounding to the
// nearest nanosecond. It is used by hardware models that express costs
// as multiples of a calibrated base time.
func Scale(t Time, f float64) Time {
	return Time(float64(t)*f + 0.5)
}

// PerByte returns the time to move n bytes at the given bandwidth in
// bytes per second. A non-positive bandwidth yields zero time, which
// models an infinitely fast (uncontended) path.
func PerByte(n int64, bytesPerSecond float64) Time {
	if bytesPerSecond <= 0 || n <= 0 {
		return 0
	}
	return Time(float64(n) / bytesPerSecond * float64(Second))
}

// Bandwidth converts a bit-rate in megabits per second to bytes per
// second, the unit PerByte consumes. It keeps experiment configuration
// in the paper's units (10 Mb/s Ethernet, 155 Mb/s ATM).
func Bandwidth(megabits float64) float64 {
	return megabits * 1e6 / 8
}

func (t Time) GoString() string { return fmt.Sprintf("sim.Time(%d)", int64(t)) }
