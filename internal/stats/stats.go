// Package stats provides the small statistical toolkit the experiment
// harness uses: streaming summaries, percentiles, histograms, and
// fixed-width table rendering for paper-vs-measured output.
package stats

import (
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations and answers the
// usual summary questions. The zero value is ready to use.
type Summary struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean (0 for an empty summary).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// Variance returns the population variance.
func (s *Summary) Variance() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		return 0 // numerical noise
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Sample collects observations for exact percentile computation. The
// zero value is ready to use.
type Sample struct {
	vals   []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Mean returns the arithmetic mean.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Percentile returns the p-th percentile (p in [0,100]) by linear
// interpolation between closest ranks. Empty samples yield 0.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	rank := p / 100 * float64(len(s.vals)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.vals[lo]
	}
	frac := rank - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// FractionBelow reports the fraction of observations strictly less than
// limit — e.g. "95% of NFS messages are under 200 bytes".
func (s *Sample) FractionBelow(limit float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	n := 0
	for _, v := range s.vals {
		if v < limit {
			n++
		}
	}
	return float64(n) / float64(len(s.vals))
}

// Histogram counts observations into fixed-width buckets over [lo, hi);
// out-of-range values land in the first/last bucket.
type Histogram struct {
	lo, hi  float64
	buckets []int64
	n       int64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	idx := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.n++
}

// Counts returns a copy of the per-bucket counts.
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// N returns the total number of observations.
func (h *Histogram) N() int64 { return h.n }

// Ratio returns a/b, or 0 when b is 0 — a guard for rate computations in
// experiment reports.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
