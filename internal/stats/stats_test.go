package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if s.Sum() != 40 {
		t.Fatalf("Sum = %v", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(5)
	if s.Min() != -5 || s.Max() != 5 || s.Mean() != 0 {
		t.Fatalf("min/max/mean = %v/%v/%v", s.Min(), s.Max(), s.Mean())
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Percentile(95); math.Abs(got-95.05) > 0.1 {
		t.Fatalf("p95 = %v", got)
	}
}

func TestSampleAddAfterPercentileResorts(t *testing.T) {
	var s Sample
	s.Add(10)
	s.Add(20)
	_ = s.Median()
	s.Add(1)
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 after re-add = %v", got)
	}
}

func TestFractionBelow(t *testing.T) {
	var s Sample
	for i := 0; i < 95; i++ {
		s.Add(100) // small messages
	}
	for i := 0; i < 5; i++ {
		s.Add(8192) // data blocks
	}
	if got := s.FractionBelow(200); math.Abs(got-0.95) > 1e-9 {
		t.Fatalf("FractionBelow = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	h.Add(-5)  // clamps to first
	h.Add(500) // clamps to last
	counts := h.Counts()
	if counts[0] != 11 || counts[9] != 11 {
		t.Fatalf("counts = %v", counts)
	}
	if h.N() != 102 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestRatioGuardsZero(t *testing.T) {
	if Ratio(10, 0) != 0 {
		t.Fatal("Ratio(_, 0) should be 0")
	}
	if Ratio(10, 4) != 2.5 {
		t.Fatal("Ratio broken")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Table 2", "Config", "Paper (µs)", "Measured (µs)")
	tbl.AddRow("Ethernet remote mem", "6900", "6903")
	tbl.AddRowf("ATM remote mem", 1050, 1051.5)
	out := tbl.String()
	if !strings.Contains(out, "Table 2") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "Ethernet remote mem") || !strings.Contains(out, "1052") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableRowShorterThanHeaders(t *testing.T) {
	tbl := NewTable("", "A", "B", "C")
	tbl.AddRow("x")
	out := tbl.String()
	if !strings.Contains(out, "x") {
		t.Fatalf("row lost: %s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		27:     "27",
		2.8:    "2.80",
		0.16:   "0.160",
		23340:  "23340",
		192.6:  "193",
		-4:     "-4",
		-0.125: "-0.125",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

// Property: mean is always within [min, max] and stddev is non-negative.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var s Summary
		ok := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			s.Add(v)
			ok = true
		}
		if !ok {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-6 && m <= s.Max()+1e-6 && s.StdDev() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
