package stats

import (
	"fmt"
	"strings"
)

// Table renders fixed-width text tables for experiment output — the
// rows/series each paper table and figure reports, printed side by side
// with the paper's numbers.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped,
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row where each cell is produced by fmt.Sprint on the
// corresponding value, with floats rendered to 3 significant-ish digits.
func (t *Table) AddRowf(cells ...any) {
	strCells := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			strCells[i] = FormatFloat(v)
		case float32:
			strCells[i] = FormatFloat(float64(v))
		default:
			strCells[i] = fmt.Sprint(c)
		}
	}
	t.AddRow(strCells...)
}

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// Headers returns the column headers.
func (t *Table) Headers() []string { return t.headers }

// Rows returns the rendered rows; cells align with Headers. The slices
// are the table's own storage — callers must not mutate them.
func (t *Table) Rows() [][]string { return t.rows }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if l := len([]rune(c)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatFloat renders a float compactly: integers without decimals,
// small values with enough precision to be meaningful.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == float64(int64(v)) && av < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
