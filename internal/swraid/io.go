package swraid

import (
	"fmt"
	"sort"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/sim"
)

// parallel runs the given operations concurrently as child processes and
// waits for all of them — the array's fan-out primitive. Errors are
// collected per operation.
func (a *Array) parallel(p *sim.Proc, ops []func(wp *sim.Proc) error) []error {
	errs := make([]error, len(ops))
	wg := sim.NewWaitGroup(p.Engine(), "swraid/fanout")
	wg.Add(len(ops))
	for i, op := range ops {
		i, op := i, op
		p.Engine().Spawn(fmt.Sprintf("swraid/op%d", i), func(wp *sim.Proc) {
			defer wg.Done()
			errs[i] = op(wp)
		})
	}
	wg.Wait(p)
	return errs
}

// readChunk fetches one chunk from a store, returning its contents.
func (a *Array) readChunk(p *sim.Proc, store netsim.NodeID, offset int64) ([]byte, error) {
	if a.dead[store] {
		return nil, fmt.Errorf("swraid: store %d marked failed", store)
	}
	reply, err := a.ep.Call(p, store, hChunkRead,
		chunkReadArgs{offset: offset, length: a.cfg.ChunkBytes}, 32)
	if err != nil {
		a.dead[store] = true // crash detected via timeout
		return nil, err
	}
	data, ok := reply.([]byte)
	if !ok {
		return nil, fmt.Errorf("swraid: bad read reply from store %d", store)
	}
	return data, nil
}

// writeChunk stores one chunk.
func (a *Array) writeChunk(p *sim.Proc, store netsim.NodeID, offset int64, data []byte) error {
	if a.dead[store] {
		return fmt.Errorf("swraid: store %d marked failed", store)
	}
	_, err := a.ep.Call(p, store, hChunkWrite,
		chunkWriteArgs{offset: offset, data: data}, len(data))
	if err != nil {
		a.dead[store] = true
		return err
	}
	return nil
}

// ReadChunks reads count logical chunks starting at logical index start,
// in parallel across the stores, reconstructing through parity or
// mirrors where stores have failed. It returns the concatenated data.
func (a *Array) ReadChunks(p *sim.Proc, start int64, count int) ([]byte, error) {
	a.reads++
	out := make([]byte, count*a.cfg.ChunkBytes)
	ops := make([]func(wp *sim.Proc) error, count)
	for i := 0; i < count; i++ {
		i := i
		logical := start + int64(i)
		ops[i] = func(wp *sim.Proc) error {
			data, err := a.readLogical(wp, logical)
			if err != nil {
				return err
			}
			copy(out[i*a.cfg.ChunkBytes:], data)
			return nil
		}
	}
	for _, err := range a.parallel(p, ops) {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ReadVec reads an arbitrary set of logical chunks — not necessarily
// contiguous — issuing every per-disk request concurrently and
// reconstructing through redundancy where stores have failed. It is the
// scatter counterpart of ReadChunks: a pipelined client hands the whole
// batch over at once and the array schedules all disks in parallel, so
// a stripe run completes in roughly one disk access rather than one per
// chunk.
func (a *Array) ReadVec(p *sim.Proc, logicals []int64) ([][]byte, error) {
	if len(logicals) == 0 {
		return nil, nil
	}
	a.reads++
	out := make([][]byte, len(logicals))
	ops := make([]func(wp *sim.Proc) error, len(logicals))
	for i := range logicals {
		i := i
		logical := logicals[i]
		ops[i] = func(wp *sim.Proc) error {
			data, err := a.readLogical(wp, logical)
			if err != nil {
				return err
			}
			out[i] = data
			return nil
		}
	}
	for _, err := range a.parallel(p, ops) {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// readLogical reads one logical chunk, degrading as needed.
func (a *Array) readLogical(p *sim.Proc, logical int64) ([]byte, error) {
	node, off, stripe, parityNode := a.layout(logical)
	if !a.dead[node] {
		data, err := a.readChunk(p, node, off)
		if err == nil {
			return data, nil
		}
	}
	switch a.cfg.Level {
	case RAID1:
		mirror := a.mirrorOf(logical)
		data, err := a.readChunk(p, mirror, mirrorOffset(off))
		if err != nil {
			return nil, fmt.Errorf("%w: chunk %d primary and mirror failed", ErrDataLost, logical)
		}
		a.degraded++
		return data, nil
	case RAID5:
		data, err := a.reconstruct(p, stripe, node, parityNode)
		if err != nil {
			return nil, err
		}
		a.degraded++
		return data, nil
	default:
		return nil, fmt.Errorf("%w: chunk %d on failed store %d", ErrDataLost, logical, node)
	}
}

// reconstruct XORs the surviving chunks of a stripe to recover the
// chunk stored on lostNode.
func (a *Array) reconstruct(p *sim.Proc, stripe int64, lostNode, parityNode netsim.NodeID) ([]byte, error) {
	off := stripe * int64(a.cfg.ChunkBytes)
	acc := make([]byte, a.cfg.ChunkBytes)
	var survivors []netsim.NodeID
	for _, s := range a.cfg.Stores {
		if s != lostNode {
			survivors = append(survivors, s)
		}
	}
	_ = parityNode // parity participates like any survivor in the XOR
	ops := make([]func(wp *sim.Proc) error, len(survivors))
	parts := make([][]byte, len(survivors))
	for i, s := range survivors {
		i, s := i, s
		ops[i] = func(wp *sim.Proc) error {
			data, err := a.readChunk(wp, s, off)
			if err != nil {
				return err
			}
			parts[i] = data
			return nil
		}
	}
	for _, err := range a.parallel(p, ops) {
		if err != nil {
			return nil, fmt.Errorf("%w: second failure during reconstruction", ErrDataLost)
		}
	}
	for _, part := range parts {
		xorInto(acc, part)
	}
	return acc, nil
}

// WriteChunks writes count logical chunks starting at logical index
// start. data must be count*ChunkBytes long. Parity is maintained with
// read-modify-write for partial stripes and direct computation for full
// stripes.
func (a *Array) WriteChunks(p *sim.Proc, start int64, data []byte) error {
	count := len(data) / a.cfg.ChunkBytes
	if count*a.cfg.ChunkBytes != len(data) {
		return fmt.Errorf("swraid: write of %d bytes not chunk-aligned (%d)", len(data), a.cfg.ChunkBytes)
	}
	logicals := make([]int64, count)
	chunks := make([][]byte, count)
	for i := 0; i < count; i++ {
		logicals[i] = start + int64(i)
		chunks[i] = data[i*a.cfg.ChunkBytes : (i+1)*a.cfg.ChunkBytes]
	}
	a.writes++
	return a.writePairs(p, logicals, chunks)
}

// WriteVec writes an arbitrary (ascending, duplicate-free) set of
// logical chunks in one vectored operation: chunks sharing a RAID-5
// stripe are committed with a single parity update, and independent
// stripes are issued to the disks concurrently. This is the write-side
// fan-out primitive for group commit — a caller flushing a write-behind
// buffer gets aggregate-disk bandwidth rather than chunk-at-a-time
// latency.
func (a *Array) WriteVec(p *sim.Proc, logicals []int64, chunks [][]byte) error {
	if len(logicals) != len(chunks) {
		return fmt.Errorf("swraid: WriteVec of %d logicals with %d chunks", len(logicals), len(chunks))
	}
	for i, c := range chunks {
		if len(c) != a.cfg.ChunkBytes {
			return fmt.Errorf("swraid: WriteVec chunk %d is %d bytes, want %d", i, len(c), a.cfg.ChunkBytes)
		}
		if i > 0 && logicals[i] <= logicals[i-1] {
			return fmt.Errorf("swraid: WriteVec logicals not strictly ascending at %d", i)
		}
	}
	if len(logicals) == 0 {
		return nil
	}
	a.writes++
	return a.writePairs(p, logicals, chunks)
}

// writePairs dispatches (logical, chunk) pairs — already ascending —
// to the level-specific write strategy.
func (a *Array) writePairs(p *sim.Proc, logicals []int64, chunks [][]byte) error {
	switch a.cfg.Level {
	case RAID5:
		return a.writeRAID5(p, logicals, chunks)
	case RAID1:
		return a.writeRAID1(p, logicals, chunks)
	default:
		ops := make([]func(wp *sim.Proc) error, len(logicals))
		for i := range logicals {
			node, off, _, _ := a.layout(logicals[i])
			chunk := chunks[i]
			ops[i] = func(wp *sim.Proc) error { return a.writeChunk(wp, node, off, chunk) }
		}
		return firstError(a.parallel(p, ops))
	}
}

func (a *Array) writeRAID1(p *sim.Proc, logicals []int64, chunks [][]byte) error {
	ops := make([]func(wp *sim.Proc) error, 0, 2*len(logicals))
	for i := range logicals {
		logical := logicals[i]
		node, off, _, _ := a.layout(logical)
		mirror := a.mirrorOf(logical)
		chunk := chunks[i]
		type target struct {
			dst netsim.NodeID
			off int64
		}
		// The mirror copy lives in a separate disk region so it cannot
		// collide with the mirror node's own primary chunk for the same
		// stripe.
		for _, tg := range []target{{node, off}, {mirror, mirrorOffset(off)}} {
			tg := tg
			stripe := off / int64(a.cfg.ChunkBytes)
			ops = append(ops, func(wp *sim.Proc) error {
				err := a.writeChunk(wp, tg.dst, tg.off, chunk)
				if err != nil && !a.dead[tg.dst] {
					return err
				}
				if a.dead[tg.dst] {
					a.markRebuildDirty(stripe)
				}
				return nil // a dead replica is tolerable; data survives on the other
			})
		}
	}
	return firstError(a.parallel(p, ops))
}

// writeRAID5 groups the write by stripe. Full stripes compute parity
// from the new data; partial stripes read-modify-write. Stripes are
// committed concurrently (ascending logicals mean each stripe appears
// exactly once).
func (a *Array) writeRAID5(p *sim.Proc, logicals []int64, chunks [][]byte) error {
	d := int64(a.dataPerStripe())
	type stripeWrite struct {
		stripe   int64
		logicals []int64
		chunks   [][]byte
	}
	var stripes []stripeWrite
	for i := range logicals {
		logical := logicals[i]
		s := logical / d
		if len(stripes) == 0 || stripes[len(stripes)-1].stripe != s {
			stripes = append(stripes, stripeWrite{stripe: s})
		}
		sw := &stripes[len(stripes)-1]
		sw.logicals = append(sw.logicals, logical)
		sw.chunks = append(sw.chunks, chunks[i])
	}
	ops := make([]func(wp *sim.Proc) error, len(stripes))
	for i := range stripes {
		sw := stripes[i]
		ops[i] = func(wp *sim.Proc) error { return a.writeStripe(wp, sw.stripe, sw.logicals, sw.chunks) }
	}
	return firstError(a.parallel(p, ops))
}

func (a *Array) writeStripe(p *sim.Proc, stripe int64, logicals []int64, chunks [][]byte) error {
	d := int64(a.dataPerStripe())
	cb := a.cfg.ChunkBytes
	off := stripe * int64(cb)
	_, _, _, parityNode := a.layout(stripe * d)

	newData := make(map[int64][]byte, len(logicals))
	targetDead := false
	for i, logical := range logicals {
		newData[logical] = chunks[i]
		if node, _, _, _ := a.layout(logical); a.dead[node] {
			targetDead = true
		}
	}

	// Degraded case 1: the stripe's parity store is dead. No parity can
	// be maintained; write the live data chunks directly. A dead data
	// target on top of a dead parity is a double failure.
	if a.dead[parityNode] {
		ops := make([]func(wp *sim.Proc) error, 0, len(logicals))
		for i, logical := range logicals {
			node, noff, _, _ := a.layout(logical)
			if a.dead[node] {
				return fmt.Errorf("%w: stripe %d lost parity and data stores", ErrDataLost, stripe)
			}
			chunk := chunks[i]
			ops = append(ops, func(wp *sim.Proc) error { return a.writeChunk(wp, node, noff, chunk) })
		}
		if err := firstError(a.parallel(p, ops)); err != nil {
			return err
		}
		a.markRebuildDirty(stripe)
		return nil
	}

	parity := make([]byte, cb)
	switch {
	case int64(len(logicals)) == d:
		// Full stripe: parity = XOR of new data. A dead data target's
		// content lives implicitly in the parity.
		for _, c := range chunks {
			xorInto(parity, c)
		}
	case targetDead:
		// Degraded reconstruct-write: a written chunk's store is dead,
		// so its content can only live in the parity. Read the stripe's
		// surviving, unwritten data chunks and recompute parity over the
		// whole stripe's new contents.
		for l := stripe * d; l < (stripe+1)*d; l++ {
			if c, ok := newData[l]; ok {
				xorInto(parity, c)
				continue
			}
			node, noff, _, _ := a.layout(l)
			if a.dead[node] {
				return fmt.Errorf("%w: stripe %d has two dead data stores", ErrDataLost, stripe)
			}
			oldD, err := a.readChunk(p, node, noff)
			if err != nil {
				return fmt.Errorf("swraid: reconstruct-write read: %w", err)
			}
			xorInto(parity, oldD)
		}
	default:
		// Healthy partial stripe: classic read-modify-write.
		oldP, err := a.readChunk(p, parityNode, off)
		if err != nil {
			return fmt.Errorf("swraid: parity RMW read: %w", err)
		}
		copy(parity, oldP)
		for i, logical := range logicals {
			node, noff, _, _ := a.layout(logical)
			oldD, err := a.readChunk(p, node, noff)
			if err != nil {
				return fmt.Errorf("swraid: data RMW read: %w", err)
			}
			xorInto(parity, oldD)
			xorInto(parity, chunks[i])
		}
	}
	ops := make([]func(wp *sim.Proc) error, 0, len(logicals)+1)
	for i, logical := range logicals {
		node, noff, _, _ := a.layout(logical)
		if a.dead[node] {
			continue // content carried by the recomputed parity
		}
		chunk := chunks[i]
		ops = append(ops, func(wp *sim.Proc) error { return a.writeChunk(wp, node, noff, chunk) })
	}
	ops = append(ops, func(wp *sim.Proc) error { return a.writeChunk(wp, parityNode, off, parity) })
	if err := firstError(a.parallel(p, ops)); err != nil {
		return err
	}
	if targetDead {
		a.markRebuildDirty(stripe)
	}
	return nil
}

// markRebuildDirty records, while a rebuild is in flight, that a
// degraded write landed on stripe: its dead chunk now lives only in the
// (new) parity, so the rebuild must reconstruct that stripe again even
// if its copy pass already visited it.
func (a *Array) markRebuildDirty(stripe int64) {
	if a.rebuildDirty != nil {
		a.rebuildDirty[stripe] = true
	}
}

// Rebuild reconstructs every stripe's lost chunk onto the replacement
// store (which must already run a Store and be reachable), then marks
// the failed node repaired in the layout by substituting replacement for
// failed in the store list. stripes is the number of stripes to rebuild
// (the array does not track a high-water mark; callers know their
// extent).
func (a *Array) Rebuild(p *sim.Proc, failed, replacement netsim.NodeID, stripes int64) error {
	sp := a.obs.StartSpan("raid.rebuild", int(replacement))
	if sp != 0 {
		a.obs.Annotate(sp, fmt.Sprintf("store %d → %d, %d stripes", failed, replacement, stripes))
	}
	defer a.obs.EndSpan(sp)
	if a.cfg.Level == RAID0 {
		return fmt.Errorf("%w: RAID-0 cannot rebuild", ErrDataLost)
	}
	idx := -1
	for i, s := range a.cfg.Stores {
		if s == failed {
			idx = i
		}
	}
	if idx < 0 {
		return fmt.Errorf("swraid: store %d not in array", failed)
	}
	if !a.dead[failed] {
		return fmt.Errorf("swraid: store %d: %w", failed, ErrNotDegraded)
	}
	cb := int64(a.cfg.ChunkBytes)
	copyStripe := func(s int64) error {
		off := s * cb
		var data []byte
		var err error
		switch a.cfg.Level {
		case RAID5:
			_, _, _, parityNode := a.layout(s * int64(a.dataPerStripe()))
			data, err = a.reconstruct(p, s, failed, parityNode)
		case RAID1:
			// The failed node's primary chunk for stripe s lives mirrored
			// on the next node in the ring, in the mirror region.
			next := a.cfg.Stores[(idx+1)%a.n()]
			data, err = a.readChunk(p, next, mirrorOffset(off))
		}
		if err != nil {
			return err
		}
		if err := a.writeChunk(p, replacement, off, data); err != nil {
			return err
		}
		if a.cfg.Level == RAID1 {
			// Also restore the mirror copies the failed node held: the
			// primaries of the previous node in the ring.
			prev := a.cfg.Stores[(idx-1+a.n())%a.n()]
			data, err := a.readChunk(p, prev, off)
			if err != nil {
				return err
			}
			if err := a.writeChunk(p, replacement, mirrorOffset(off), data); err != nil {
				return err
			}
		}
		return nil
	}
	a.rebuildDirty = make(map[int64]bool)
	defer func() { a.rebuildDirty = nil }()
	for s := int64(0); s < stripes; s++ {
		if err := copyStripe(s); err != nil {
			return err
		}
	}
	// Catch-up: writes that landed while the copy pass ran left their
	// dead chunk in parity only — the stripe on the replacement is
	// stale. Re-reconstruct those stripes (repeatedly: a catch-up pass
	// can itself be overtaken by new writes) before swapping the layout.
	for len(a.rebuildDirty) > 0 {
		dirty := make([]int64, 0, len(a.rebuildDirty))
		for s := range a.rebuildDirty {
			dirty = append(dirty, s)
		}
		sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
		a.rebuildDirty = make(map[int64]bool)
		if sp != 0 {
			a.obs.Annotate(sp, fmt.Sprintf("catch-up: %d stripe(s) dirtied during copy", len(dirty)))
		}
		for _, s := range dirty {
			if err := copyStripe(s); err != nil {
				return err
			}
		}
	}
	a.cfg.Stores[idx] = replacement
	a.MarkRepaired(failed)
	a.MarkRepaired(replacement)
	return nil
}

// AdoptReplacement updates the layout after some OTHER array view has
// already rebuilt failed's data onto replacement: it substitutes the
// store in the layout and clears failure marks without copying any
// data. All views of a shared array must converge on the same layout.
func (a *Array) AdoptReplacement(failed, replacement netsim.NodeID) error {
	for i, s := range a.cfg.Stores {
		if s == failed {
			a.cfg.Stores[i] = replacement
			a.MarkRepaired(failed)
			a.MarkRepaired(replacement)
			return nil
		}
	}
	return fmt.Errorf("swraid: store %d not in array", failed)
}

// mirrorOffset maps a primary chunk offset into the disk's mirror
// region (top of the address space), keeping replica copies disjoint
// from the node's own primaries.
func mirrorOffset(off int64) int64 { return off | 1<<40 }

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
