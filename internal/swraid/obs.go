package swraid

import "github.com/nowproject/now/internal/obs"

// Instrument attaches metrics and span tracing to the array. Call once
// per registry, on the array under study (xFS builds one array per
// client over the same stores — instrument one). A nil registry is a
// no-op. Counters are mirrored into gauges at snapshot time; each
// Rebuild records a raid.rebuild span (node = replacement store).
//
// Array metrics (names per docs/OBSERVABILITY.md):
//
//	raid.reads             logical array reads (sampled)
//	raid.writes            logical array writes (sampled)
//	raid.reads.degraded    reads served through parity/mirror (sampled)
//	raid.stores.dead       stores currently marked failed (sampled)
func (a *Array) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	a.obs = r
	reads := r.Gauge("raid.reads")
	writes := r.Gauge("raid.writes")
	degraded := r.Gauge("raid.reads.degraded")
	dead := r.Gauge("raid.stores.dead")
	r.OnSample(func() {
		reads.Set(a.reads)
		writes.Set(a.writes)
		degraded.Set(a.degraded)
		dead.Set(int64(len(a.dead)))
	})
}
