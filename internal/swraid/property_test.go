package swraid

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/sim"
)

// TestRandomOpsMatchReferenceModel drives the array with random chunk
// writes and reads — injecting one store crash partway through — and
// checks every read against a plain in-memory reference model. RAID-1
// and RAID-5 must never return wrong data with a single failure.
func TestRandomOpsMatchReferenceModel(t *testing.T) {
	const (
		chunkBytes = 256
		logical    = 24 // logical chunks in play
		ops        = 120
	)
	for _, level := range []Level{RAID1, RAID5} {
		for seed := int64(1); seed <= 5; seed++ {
			level, seed := level, seed
			t.Run(level.String(), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				r := newRaidRig(t, level, 5, chunkBytes)
				ref := make(map[int64][]byte)
				crashAt := ops/3 + rng.Intn(ops/3)
				crashed := false
				r.run(t, func(p *sim.Proc) {
					for op := 0; op < ops; op++ {
						if op == crashAt && !crashed {
							victim := 1 + rng.Intn(5)
							r.eps[victim].Detach()
							r.arr.MarkFailed(r.eps[victim].ID())
							crashed = true
						}
						l := int64(rng.Intn(logical))
						if rng.Intn(2) == 0 {
							// Write 1-3 contiguous chunks.
							n := 1 + rng.Intn(3)
							if l+int64(n) > logical {
								n = int(logical - l)
							}
							data := make([]byte, n*chunkBytes)
							rng.Read(data)
							if err := r.arr.WriteChunks(p, l, data); err != nil {
								t.Fatalf("op %d write: %v", op, err)
							}
							for i := 0; i < n; i++ {
								c := make([]byte, chunkBytes)
								copy(c, data[i*chunkBytes:])
								ref[l+int64(i)] = c
							}
						} else {
							got, err := r.arr.ReadChunks(p, l, 1)
							if err != nil {
								t.Fatalf("op %d read chunk %d: %v", op, l, err)
							}
							want, ok := ref[l]
							if !ok {
								want = make([]byte, chunkBytes)
							}
							if !bytes.Equal(got, want) {
								t.Fatalf("op %d: chunk %d differs from reference (crashed=%v)",
									op, l, crashed)
							}
						}
					}
				})
			})
		}
	}
}

// TestRAID5ParityConsistentAfterRandomWrites writes random chunks, then
// crashes EVERY store in turn (one at a time, healing between) and
// verifies each chunk reconstructs — the parity must be consistent no
// matter which disk dies.
func TestRAID5ParityConsistentAfterRandomWrites(t *testing.T) {
	const chunkBytes = 128
	const logical = 16
	rng := rand.New(rand.NewSource(7))
	r := newRaidRig(t, RAID5, 5, chunkBytes)
	ref := make(map[int64][]byte)
	r.run(t, func(p *sim.Proc) {
		for op := 0; op < 60; op++ {
			l := int64(rng.Intn(logical))
			data := make([]byte, chunkBytes)
			rng.Read(data)
			if err := r.arr.WriteChunks(p, l, data); err != nil {
				t.Fatal(err)
			}
			ref[l] = append([]byte(nil), data...)
		}
		for victim := 0; victim < 5; victim++ {
			r.arr.MarkFailed(r.eps[victim+1].ID())
			for l := int64(0); l < logical; l++ {
				got, err := r.arr.ReadChunks(p, l, 1)
				if err != nil {
					t.Fatalf("victim %d chunk %d: %v", victim, l, err)
				}
				want, ok := ref[l]
				if !ok {
					want = make([]byte, chunkBytes)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("victim %d chunk %d: reconstruction wrong", victim, l)
				}
			}
			r.arr.MarkRepaired(r.eps[victim+1].ID())
		}
	})
}

// TestRebuildThenSecondFailure verifies the full lifecycle: fail, serve
// degraded, rebuild onto a spare, then survive a second (different)
// failure — the availability story the paper tells about software RAID
// having no central host.
func TestRebuildThenSecondFailure(t *testing.T) {
	const chunkBytes = 128
	r := newRaidRig(t, RAID5, 6, chunkBytes) // stores 1..6; use 1..5, 6 is spare
	arr, err := NewArray(r.eps[0], Config{
		Level: RAID5, ChunkBytes: chunkBytes,
		Stores: []netsim.NodeID{r.eps[1].ID(), r.eps[2].ID(), r.eps[3].ID(), r.eps[4].ID(), r.eps[5].ID()},
	})
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(12, chunkBytes, 9)
	r.run(t, func(p *sim.Proc) {
		if err := arr.WriteChunks(p, 0, data); err != nil {
			t.Fatal(err)
		}
		// First failure + rebuild onto the spare.
		r.eps[2].Detach()
		arr.MarkFailed(r.eps[2].ID())
		if err := arr.Rebuild(p, r.eps[2].ID(), r.eps[6].ID(), 3); err != nil {
			t.Fatal(err)
		}
		// Second failure of a different store: parity must still save us.
		r.eps[4].Detach()
		arr.MarkFailed(r.eps[4].ID())
		got, err := arr.ReadChunks(p, 0, 12)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("data wrong after rebuild + second failure")
		}
	})
}
