package swraid

import (
	"bytes"
	"errors"
	"testing"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/sim"
)

// TestRebuildHealthyArrayIsTypedError: asking to rebuild a store that
// was never marked failed must fail with ErrNotDegraded, so callers
// (the fault injector among them) can tell a mis-scripted plan from a
// real rebuild failure.
func TestRebuildHealthyArrayIsTypedError(t *testing.T) {
	r := newRaidRig(t, RAID5, 4, 512)
	r.run(t, func(p *sim.Proc) {
		err := r.arr.Rebuild(p, r.eps[2].ID(), r.eps[3].ID(), 1)
		if err == nil {
			t.Fatal("rebuild of a healthy store succeeded")
		}
		if !errors.Is(err, ErrNotDegraded) {
			t.Fatalf("error %v is not ErrNotDegraded", err)
		}
	})
}

// TestRebuildWhileDegradedWritesInterleave runs a writer concurrently
// with the rebuild: degraded writes keep landing while reconstruction
// streams onto the spare, and every write — before, during, after —
// must read back correctly once the array is healthy again.
func TestRebuildWhileDegradedWritesInterleave(t *testing.T) {
	// 5 endpoints: stores 1..4 in the array, 5 is the spare.
	r := newRaidRig(t, RAID5, 5, 512)
	ids := []netsim.NodeID{r.eps[1].ID(), r.eps[2].ID(), r.eps[3].ID(), r.eps[4].ID()}
	arr, err := NewArray(r.eps[0], Config{Level: RAID5, ChunkBytes: 512, Stores: ids})
	if err != nil {
		t.Fatal(err)
	}
	const stripes = 6
	nchunks := int64(stripes) * int64(arr.dataPerStripe())
	want := pattern(int(nchunks), 512, 11)
	initial := append([]byte(nil), want...)
	spare := r.eps[5].ID()
	failed := r.eps[2].ID()

	// degraded gates the writer until the store has failed, so its
	// writes genuinely interleave with the rebuild rather than with the
	// initial data load.
	degraded := sim.NewWaitGroup(r.e, "degraded")
	degraded.Add(1)
	var rebuildDone, writesDone sim.Time
	r.e.Spawn("writer", func(p *sim.Proc) {
		degraded.Wait(p)
		for i := int64(0); i < nchunks; i += 6 {
			chunk := pattern(1, 512, byte(40+i))
			if err := arr.WriteChunks(p, i, chunk); err != nil {
				t.Errorf("degraded write %d: %v", i, err)
				return
			}
			copy(want[i*512:(i+1)*512], chunk)
		}
		writesDone = p.Now()
	})
	r.run(t, func(p *sim.Proc) {
		if err := arr.WriteChunks(p, 0, initial); err != nil {
			t.Fatal(err)
		}
		r.eps[2].Detach()
		arr.MarkFailed(failed)
		degraded.Done()
		p.Yield()
		if err := arr.Rebuild(p, failed, spare, stripes); err != nil {
			t.Fatal(err)
		}
		rebuildDone = p.Now()
		// Drain the writer, then verify everything reads back exactly.
		p.Sleep(sim.Second)
		got, err := arr.ReadChunks(p, 0, int(nchunks))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("data wrong after interleaved rebuild and writes")
		}
		_, _, degBefore := arr.Stats()
		if _, err := arr.ReadChunks(p, 0, int(nchunks)); err != nil {
			t.Fatal(err)
		}
		if _, _, degAfter := arr.Stats(); degAfter != degBefore {
			t.Fatal("reads still degraded after rebuild")
		}
	})
	if writesDone == 0 || rebuildDone == 0 {
		t.Fatal("writer or rebuild never finished")
	}
	// The point of the test is the overlap: the degraded writes must
	// have finished inside the rebuild window (deterministic per seed;
	// retune the write count if the timings ever change).
	if writesDone >= rebuildDone {
		t.Fatalf("writes (%v) outlasted the rebuild (%v): no interleaving exercised",
			writesDone, rebuildDone)
	}
}

// TestAdoptReplacementMatchesRebuiltView: a second view of the same
// physical stores adopts the rebuilt layout without copying, and reads
// the writer's data through the replacement.
func TestAdoptReplacementMatchesRebuiltView(t *testing.T) {
	r := newRaidRig(t, RAID5, 5, 512)
	ids := []netsim.NodeID{r.eps[1].ID(), r.eps[2].ID(), r.eps[3].ID(), r.eps[4].ID()}
	mk := func() *Array {
		arr, err := NewArray(r.eps[0], Config{Level: RAID5, ChunkBytes: 512, Stores: append([]netsim.NodeID(nil), ids...)})
		if err != nil {
			t.Fatal(err)
		}
		return arr
	}
	writerView, readerView := mk(), mk()
	data := pattern(9, 512, 3)
	failed, spare := r.eps[2].ID(), r.eps[5].ID()
	r.run(t, func(p *sim.Proc) {
		if err := writerView.WriteChunks(p, 0, data); err != nil {
			t.Fatal(err)
		}
		r.eps[2].Detach()
		writerView.MarkFailed(failed)
		readerView.MarkFailed(failed)
		if err := writerView.Rebuild(p, failed, spare, 3); err != nil {
			t.Fatal(err)
		}
		if err := readerView.AdoptReplacement(failed, spare); err != nil {
			t.Fatal(err)
		}
		got, err := readerView.ReadChunks(p, 0, 9)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("adopted view reads wrong data")
		}
		if err := readerView.AdoptReplacement(failed, spare); err == nil {
			t.Fatal("second adoption of the same store succeeded")
		}
	})
}
