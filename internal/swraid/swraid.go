// Package swraid implements redundant arrays of workstation disks: the
// paper's "RAID in software, writing data redundantly across an array of
// disks in each of the network's workstations", with the fast network as
// the I/O backplane. Unlike a hardware RAID there is no central host to
// fail — any client drives the array directly, and when a workstation
// crashes its data is served degraded through parity and rebuilt onto a
// replacement.
//
// Data is real: stores keep chunk contents and parity is actual XOR, so
// tests verify end-to-end integrity through failures, not just timing.
// Three layouts are provided: RAID0 striping, RAID1 chained-declustered
// mirroring, and RAID5 rotating parity.
package swraid

import (
	"errors"
	"fmt"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// Level is the redundancy scheme.
type Level int

const (
	// RAID0 stripes with no redundancy: fastest, fails on any crash.
	RAID0 Level = iota
	// RAID1 mirrors each chunk on the next node (chained declustering).
	RAID1
	// RAID5 rotates XOR parity across the stripe group.
	RAID5
)

// String names the level.
func (l Level) String() string {
	switch l {
	case RAID0:
		return "RAID-0"
	case RAID1:
		return "RAID-1"
	case RAID5:
		return "RAID-5"
	default:
		return fmt.Sprintf("RAID(%d)", int(l))
	}
}

// AM handlers (swraid owns 0x50–0x5F).
const (
	hChunkRead am.HandlerID = 0x50 + iota
	hChunkWrite
)

// ErrDataLost is returned when a read cannot be satisfied: more failures
// than the redundancy level tolerates.
var ErrDataLost = errors.New("swraid: data lost (insufficient redundancy)")

// ErrNotDegraded is returned by Rebuild when the store named as failed
// is not actually marked failed: "rebuilding" from an array that still
// trusts that store would copy healthy data while racing live writes to
// it — almost certainly a wrong store id. Callers must MarkFailed (or
// let a timeout do it) before rebuilding.
var ErrNotDegraded = errors.New("swraid: rebuild source not marked failed")

// Store serves chunk reads and writes from one workstation's disk. All
// storage nodes of an array run a Store.
type Store struct {
	ep     *am.Endpoint
	chunks map[int64][]byte
}

// NewStore installs the storage handlers on ep's node.
func NewStore(ep *am.Endpoint) *Store {
	s := &Store{ep: ep, chunks: make(map[int64][]byte)}
	ep.Register(hChunkRead, s.onRead)
	ep.Register(hChunkWrite, s.onWrite)
	return s
}

type chunkReadArgs struct {
	offset int64
	length int
}

type chunkWriteArgs struct {
	offset int64
	data   []byte
}

func (s *Store) onRead(p *sim.Proc, m am.Msg) (any, int) {
	args := m.Arg.(chunkReadArgs)
	// Sequential within a chunk; chunks are placed at their offsets so
	// the disk model can recognise streaming access patterns.
	s.ep.Node().Disk.ReadSeq(p, args.offset, args.length)
	data, ok := s.chunks[args.offset]
	if !ok {
		data = make([]byte, args.length) // unwritten space reads as zeros
	}
	out := make([]byte, args.length)
	copy(out, data)
	return out, args.length
}

func (s *Store) onWrite(p *sim.Proc, m am.Msg) (any, int) {
	args := m.Arg.(chunkWriteArgs)
	s.ep.Node().Disk.WriteSeq(p, args.offset, len(args.data))
	buf := make([]byte, len(args.data))
	copy(buf, args.data)
	s.chunks[args.offset] = buf
	return true, 8
}

// Chunks reports how many distinct chunks this store holds (testing and
// rebuild verification).
func (s *Store) Chunks() int { return len(s.chunks) }

// Config shapes an array.
type Config struct {
	// Level is the redundancy scheme.
	Level Level
	// ChunkBytes is the striping unit per disk.
	ChunkBytes int
	// Stores are the storage nodes, in layout order.
	Stores []netsim.NodeID
}

// Array is a client's view of a software RAID. Multiple arrays (on
// different client nodes) may address the same stores.
type Array struct {
	ep   *am.Endpoint
	cfg  Config
	dead map[netsim.NodeID]bool

	// rebuildDirty is non-nil only while a Rebuild is in flight: it
	// collects stripes that degraded writes touched after the copy pass
	// may already have passed them, so the rebuild can re-reconstruct
	// them before swapping the layout (a write-during-rebuild otherwise
	// survives only in parity, which the swapped layout no longer reads).
	rebuildDirty map[int64]bool

	reads, writes, degraded int64

	obs *obs.Registry // nil unless Instrument attached a registry
}

// NewArray creates a client view. RAID5 needs at least 3 stores, RAID1
// at least 2.
func NewArray(ep *am.Endpoint, cfg Config) (*Array, error) {
	if cfg.ChunkBytes <= 0 {
		return nil, fmt.Errorf("swraid: chunk size %d", cfg.ChunkBytes)
	}
	min := 1
	switch cfg.Level {
	case RAID1:
		min = 2
	case RAID5:
		min = 3
	}
	if len(cfg.Stores) < min {
		return nil, fmt.Errorf("swraid: %s needs ≥%d stores, have %d", cfg.Level, min, len(cfg.Stores))
	}
	return &Array{ep: ep, cfg: cfg, dead: make(map[netsim.NodeID]bool)}, nil
}

// Config returns the array's layout.
func (a *Array) Config() Config { return a.cfg }

// MarkFailed records that a store crashed; subsequent I/O avoids it and
// uses redundancy.
func (a *Array) MarkFailed(id netsim.NodeID) { a.dead[id] = true }

// MarkRepaired clears a failure mark (after Rebuild).
func (a *Array) MarkRepaired(id netsim.NodeID) { delete(a.dead, id) }

// FailedStores lists the stripe members currently marked failed, in id
// order — empty when the array is healthy. Only stores in the layout
// count: a failure mark left by a node outside the stripe (a crashed
// spare, a replaced member) does not make the array degraded.
func (a *Array) FailedStores() []netsim.NodeID {
	var out []netsim.NodeID
	for _, id := range a.cfg.Stores {
		if a.dead[id] {
			out = append(out, id)
		}
	}
	return out
}

// Stats returns (reads, writes, degradedReads).
func (a *Array) Stats() (reads, writes, degraded int64) {
	return a.reads, a.writes, a.degraded
}

// n is the number of stores.
func (a *Array) n() int { return len(a.cfg.Stores) }

// dataPerStripe is the number of data chunks per stripe.
func (a *Array) dataPerStripe() int {
	if a.cfg.Level == RAID5 {
		return a.n() - 1
	}
	return a.n()
}

// layout maps a logical chunk index to (node, node-local offset) and,
// for RAID5, identifies the stripe's parity node.
func (a *Array) layout(logical int64) (dataNode netsim.NodeID, nodeOffset int64, stripe int64, parityNode netsim.NodeID) {
	n := int64(a.n())
	switch a.cfg.Level {
	case RAID5:
		d := n - 1
		stripe = logical / d
		pos := logical % d
		pIdx := n - 1 - stripe%n
		idx := pos
		if idx >= pIdx {
			idx++ // skip the parity slot
		}
		return a.cfg.Stores[idx], stripe * int64(a.cfg.ChunkBytes), stripe, a.cfg.Stores[pIdx]
	default:
		stripe = logical / n
		idx := logical % n
		return a.cfg.Stores[idx], stripe * int64(a.cfg.ChunkBytes), stripe, 0
	}
}

// mirrorOf returns the RAID1 replica node for a logical chunk (chained
// declustering: the next node in the ring).
func (a *Array) mirrorOf(logical int64) netsim.NodeID {
	n := int64(a.n())
	idx := (logical%n + 1) % n
	return a.cfg.Stores[idx]
}

func xorInto(dst, src []byte) {
	for i := range src {
		dst[i] ^= src[i]
	}
}
