package swraid

import (
	"bytes"
	"errors"
	"testing"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// raidRig is a client node (id 0) plus n storage nodes (ids 1..n).
type raidRig struct {
	e      *sim.Engine
	arr    *Array
	stores []*Store
	eps    []*am.Endpoint // index 0 = client
}

func newRaidRig(t *testing.T, level Level, nStores, chunkBytes int) *raidRig {
	t.Helper()
	e := sim.NewEngine(1)
	fab, err := netsim.New(e, netsim.Myrinet(nStores+1))
	if err != nil {
		t.Fatal(err)
	}
	acfg := am.DefaultConfig()
	acfg.RetryTimeout = 500 * sim.Microsecond
	acfg.MaxRetries = 3
	r := &raidRig{e: e}
	ids := make([]netsim.NodeID, 0, nStores)
	for i := 0; i <= nStores; i++ {
		ep := am.NewEndpoint(e, node.New(e, node.DefaultConfig(netsim.NodeID(i))), fab, acfg)
		r.eps = append(r.eps, ep)
		if i > 0 {
			r.stores = append(r.stores, NewStore(ep))
			ids = append(ids, ep.ID())
		}
	}
	arr, err := NewArray(r.eps[0], Config{Level: level, ChunkBytes: chunkBytes, Stores: ids})
	if err != nil {
		t.Fatal(err)
	}
	r.arr = arr
	return r
}

func (r *raidRig) run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	r.e.Spawn("driver", func(p *sim.Proc) {
		body(p)
		r.e.Stop()
	})
	if err := r.e.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
}

// pattern fills count chunks of cb bytes with a deterministic pattern.
func pattern(count, cb int, seed byte) []byte {
	out := make([]byte, count*cb)
	for i := range out {
		out[i] = byte(i)*7 + seed
	}
	return out
}

func TestRoundTripAllLevels(t *testing.T) {
	for _, level := range []Level{RAID0, RAID1, RAID5} {
		t.Run(level.String(), func(t *testing.T) {
			r := newRaidRig(t, level, 4, 1024)
			data := pattern(8, 1024, 3)
			r.run(t, func(p *sim.Proc) {
				if err := r.arr.WriteChunks(p, 0, data); err != nil {
					t.Fatal(err)
				}
				got, err := r.arr.ReadChunks(p, 0, 8)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data) {
					t.Fatal("read back differs from written data")
				}
			})
		})
	}
}

func TestUnwrittenSpaceReadsZero(t *testing.T) {
	r := newRaidRig(t, RAID0, 3, 512)
	r.run(t, func(p *sim.Proc) {
		got, err := r.arr.ReadChunks(p, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range got {
			if b != 0 {
				t.Fatal("unwritten space not zero")
			}
		}
	})
}

func TestRAID5DegradedReadReconstructs(t *testing.T) {
	r := newRaidRig(t, RAID5, 4, 1024)
	data := pattern(9, 1024, 5) // three full stripes (3 data chunks each)
	r.run(t, func(p *sim.Proc) {
		if err := r.arr.WriteChunks(p, 0, data); err != nil {
			t.Fatal(err)
		}
		// Crash store 2.
		r.eps[2].Detach()
		r.arr.MarkFailed(r.eps[2].ID())
		got, err := r.arr.ReadChunks(p, 0, 9)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("degraded read returned wrong data")
		}
	})
	if _, _, degraded := r.arr.Stats(); degraded == 0 {
		t.Fatal("no degraded reads recorded")
	}
}

func TestRAID1DegradedReadUsesMirror(t *testing.T) {
	r := newRaidRig(t, RAID1, 3, 512)
	data := pattern(6, 512, 9)
	r.run(t, func(p *sim.Proc) {
		if err := r.arr.WriteChunks(p, 0, data); err != nil {
			t.Fatal(err)
		}
		r.eps[1].Detach()
		r.arr.MarkFailed(r.eps[1].ID())
		got, err := r.arr.ReadChunks(p, 0, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("mirror read returned wrong data")
		}
	})
}

func TestRAID0FailureLosesData(t *testing.T) {
	r := newRaidRig(t, RAID0, 3, 512)
	data := pattern(3, 512, 1)
	r.run(t, func(p *sim.Proc) {
		if err := r.arr.WriteChunks(p, 0, data); err != nil {
			t.Fatal(err)
		}
		r.arr.MarkFailed(r.eps[1].ID())
		_, err := r.arr.ReadChunks(p, 0, 3)
		if !errors.Is(err, ErrDataLost) {
			t.Fatalf("err = %v, want ErrDataLost", err)
		}
	})
}

func TestRAID5DoubleFailureLosesData(t *testing.T) {
	r := newRaidRig(t, RAID5, 4, 512)
	data := pattern(3, 512, 2)
	r.run(t, func(p *sim.Proc) {
		if err := r.arr.WriteChunks(p, 0, data); err != nil {
			t.Fatal(err)
		}
		r.arr.MarkFailed(r.eps[1].ID())
		r.arr.MarkFailed(r.eps[2].ID())
		_, err := r.arr.ReadChunks(p, 0, 3)
		if !errors.Is(err, ErrDataLost) {
			t.Fatalf("err = %v, want ErrDataLost", err)
		}
	})
}

func TestRAID5PartialStripeRMW(t *testing.T) {
	r := newRaidRig(t, RAID5, 4, 512)
	full := pattern(6, 512, 7)
	r.run(t, func(p *sim.Proc) {
		if err := r.arr.WriteChunks(p, 0, full); err != nil {
			t.Fatal(err)
		}
		// Overwrite just logical chunk 1 (partial stripe → RMW).
		newChunk := pattern(1, 512, 99)
		if err := r.arr.WriteChunks(p, 1, newChunk); err != nil {
			t.Fatal(err)
		}
		copy(full[512:1024], newChunk)
		// Parity must still be consistent: crash the node holding chunk 1
		// and reconstruct it.
		node1, _, _, _ := r.arr.layout(1)
		for i, ep := range r.eps {
			if ep.ID() == node1 && i > 0 {
				ep.Detach()
			}
		}
		r.arr.MarkFailed(node1)
		got, err := r.arr.ReadChunks(p, 0, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, full) {
			t.Fatal("RMW left parity inconsistent")
		}
	})
}

func TestRebuildRAID5(t *testing.T) {
	// 4 stores + 1 spare (node 5).
	r := newRaidRig(t, RAID5, 5, 512)
	spare := r.eps[5]
	// Use only the first 4 stores in the array.
	ids := []netsim.NodeID{r.eps[1].ID(), r.eps[2].ID(), r.eps[3].ID(), r.eps[4].ID()}
	arr, err := NewArray(r.eps[0], Config{Level: RAID5, ChunkBytes: 512, Stores: ids})
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(9, 512, 4)
	r.run(t, func(p *sim.Proc) {
		if err := arr.WriteChunks(p, 0, data); err != nil {
			t.Fatal(err)
		}
		r.eps[2].Detach()
		arr.MarkFailed(r.eps[2].ID())
		if err := arr.Rebuild(p, r.eps[2].ID(), spare.ID(), 3); err != nil {
			t.Fatal(err)
		}
		got, err := arr.ReadChunks(p, 0, 9)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("data wrong after rebuild")
		}
		// Reads must now be non-degraded again.
		_, _, degBefore := arr.Stats()
		if _, err := arr.ReadChunks(p, 0, 9); err != nil {
			t.Fatal(err)
		}
		if _, _, degAfter := arr.Stats(); degAfter != degBefore {
			t.Fatal("reads still degraded after rebuild")
		}
	})
}

func TestRebuildRAID1(t *testing.T) {
	r := newRaidRig(t, RAID1, 4, 512)
	spare := r.eps[4]
	ids := []netsim.NodeID{r.eps[1].ID(), r.eps[2].ID(), r.eps[3].ID()}
	arr, err := NewArray(r.eps[0], Config{Level: RAID1, ChunkBytes: 512, Stores: ids})
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(6, 512, 8)
	r.run(t, func(p *sim.Proc) {
		if err := arr.WriteChunks(p, 0, data); err != nil {
			t.Fatal(err)
		}
		r.eps[1].Detach()
		arr.MarkFailed(r.eps[1].ID())
		if err := arr.Rebuild(p, r.eps[1].ID(), spare.ID(), 2); err != nil {
			t.Fatal(err)
		}
		got, err := arr.ReadChunks(p, 0, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("data wrong after RAID1 rebuild")
		}
	})
}

func TestStripedReadBandwidthScales(t *testing.T) {
	// The paper: "each workstation can appear to have disk bandwidth
	// limited only by the network link bandwidth" — a striped read from
	// N disks approaches N× one disk's streaming rate.
	readTime := func(nStores int) sim.Duration {
		r := newRaidRig(t, RAID0, nStores, 64*1024)
		data := pattern(nStores*4, 64*1024, 1)
		var elapsed sim.Duration
		r.run(t, func(p *sim.Proc) {
			if err := r.arr.WriteChunks(p, 0, data); err != nil {
				t.Fatal(err)
			}
			start := p.Now()
			if _, err := r.arr.ReadChunks(p, 0, nStores*4); err != nil {
				t.Fatal(err)
			}
			elapsed = p.Now() - start
		})
		return elapsed
	}
	one := readTime(1)
	four := readTime(4)
	// Same total bytes per disk ⇒ similar time; 4 disks move 4× the data.
	ratio := float64(one) / float64(four) * 4 // effective speedup on equal data
	if ratio < 2.5 {
		t.Fatalf("striping speedup = %.2f with 4 disks, want ≳3", ratio)
	}
}

func TestWriteChunksRejectsUnaligned(t *testing.T) {
	r := newRaidRig(t, RAID0, 2, 512)
	r.run(t, func(p *sim.Proc) {
		if err := r.arr.WriteChunks(p, 0, make([]byte, 700)); err == nil {
			t.Fatal("unaligned write accepted")
		}
	})
}

func TestNewArrayValidation(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	fab, err := netsim.New(e, netsim.Myrinet(4))
	if err != nil {
		t.Fatal(err)
	}
	ep := am.NewEndpoint(e, node.New(e, node.DefaultConfig(0)), fab, am.DefaultConfig())
	if _, err := NewArray(ep, Config{Level: RAID5, ChunkBytes: 512, Stores: []netsim.NodeID{1, 2}}); err == nil {
		t.Fatal("RAID5 with 2 stores accepted")
	}
	if _, err := NewArray(ep, Config{Level: RAID1, ChunkBytes: 512, Stores: []netsim.NodeID{1}}); err == nil {
		t.Fatal("RAID1 with 1 store accepted")
	}
	if _, err := NewArray(ep, Config{Level: RAID0, ChunkBytes: 0, Stores: []netsim.NodeID{1}}); err == nil {
		t.Fatal("zero chunk size accepted")
	}
}

func TestLevelString(t *testing.T) {
	if RAID5.String() != "RAID-5" || RAID0.String() != "RAID-0" || RAID1.String() != "RAID-1" {
		t.Fatal("level names wrong")
	}
}

func TestRebuildUnknownStore(t *testing.T) {
	r := newRaidRig(t, RAID5, 3, 512)
	r.run(t, func(p *sim.Proc) {
		if err := r.arr.Rebuild(p, netsim.NodeID(99), netsim.NodeID(98), 1); err == nil {
			t.Fatal("rebuild of unknown store succeeded")
		}
	})
}
