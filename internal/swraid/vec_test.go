package swraid

import (
	"bytes"
	"testing"

	"github.com/nowproject/now/internal/sim"
)

// TestWriteVecReadVecRoundTrip writes a scattered set of chunks in one
// vectored call and reads them back the same way, at every RAID level.
func TestWriteVecReadVecRoundTrip(t *testing.T) {
	for _, level := range []Level{RAID0, RAID1, RAID5} {
		t.Run(level.String(), func(t *testing.T) {
			r := newRaidRig(t, level, 4, 1024)
			logicals := []int64{0, 2, 3, 7, 11} // mixes shared and lone stripes
			chunks := make([][]byte, len(logicals))
			for i := range logicals {
				chunks[i] = pattern(1, 1024, byte(10+i))
			}
			r.run(t, func(p *sim.Proc) {
				if err := r.arr.WriteVec(p, logicals, chunks); err != nil {
					t.Fatal(err)
				}
				got, err := r.arr.ReadVec(p, logicals)
				if err != nil {
					t.Fatal(err)
				}
				for i := range logicals {
					if !bytes.Equal(got[i], chunks[i]) {
						t.Fatalf("chunk %d differs after vectored round trip", logicals[i])
					}
				}
			})
		})
	}
}

// TestWriteVecMatchesWriteChunks confirms the vectored write leaves the
// stores in exactly the state a contiguous WriteChunks would: same
// bytes, same parity (checked by degraded read-back).
func TestWriteVecMatchesWriteChunks(t *testing.T) {
	data := pattern(6, 512, 9)
	chunks := make([][]byte, 6)
	logicals := make([]int64, 6)
	for i := range chunks {
		chunks[i] = data[i*512 : (i+1)*512]
		logicals[i] = int64(i)
	}
	r := newRaidRig(t, RAID5, 4, 512)
	r.run(t, func(p *sim.Proc) {
		if err := r.arr.WriteVec(p, logicals, chunks); err != nil {
			t.Fatal(err)
		}
		// Parity must be valid: kill a store and reconstruct every chunk.
		r.arr.MarkFailed(r.eps[2].ID())
		got, err := r.arr.ReadChunks(p, 0, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("degraded read after WriteVec differs — parity not maintained")
		}
	})
}

// TestWriteVecValidation rejects malformed vectored writes.
func TestWriteVecValidation(t *testing.T) {
	r := newRaidRig(t, RAID5, 3, 256)
	r.run(t, func(p *sim.Proc) {
		if err := r.arr.WriteVec(p, []int64{0, 1}, [][]byte{make([]byte, 256)}); err == nil {
			t.Error("length mismatch accepted")
		}
		if err := r.arr.WriteVec(p, []int64{0}, [][]byte{make([]byte, 100)}); err == nil {
			t.Error("short chunk accepted")
		}
		if err := r.arr.WriteVec(p, []int64{3, 1}, [][]byte{make([]byte, 256), make([]byte, 256)}); err == nil {
			t.Error("descending logicals accepted")
		}
		if err := r.arr.WriteVec(p, nil, nil); err != nil {
			t.Errorf("empty vectored write should be a no-op, got %v", err)
		}
	})
}

// TestReadVecFasterThanSerial is the point of the vectored path: a
// stripe run handed over at once completes in far less virtual time
// than chunk-at-a-time reads of the same set.
func TestReadVecFasterThanSerial(t *testing.T) {
	const n = 12
	logicals := make([]int64, n)
	for i := range logicals {
		logicals[i] = int64(i)
	}
	r := newRaidRig(t, RAID5, 5, 2048)
	r.run(t, func(p *sim.Proc) {
		if err := r.arr.WriteChunks(p, 0, pattern(n, 2048, 1)); err != nil {
			t.Fatal(err)
		}
		t0 := p.Now()
		for _, l := range logicals {
			if _, err := a1(r.arr.ReadChunks(p, l, 1)); err != nil {
				t.Fatal(err)
			}
		}
		serial := p.Now() - t0
		t0 = p.Now()
		if _, err := r.arr.ReadVec(p, logicals); err != nil {
			t.Fatal(err)
		}
		vectored := p.Now() - t0
		if vectored*2 >= serial {
			t.Fatalf("ReadVec not ≥2x faster: serial %v, vectored %v", serial, vectored)
		}
	})
}

// a1 drops the second value of a two-value return for terse call sites.
func a1[T any](v T, err error) (T, error) { return v, err }
