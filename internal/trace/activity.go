// Package trace generates the synthetic workloads standing in for the
// traces the Berkeley NOW team collected and we cannot have:
//
//   - two months of DECstation activity logs from 53 EE-grad-student
//     workstations (≈3,000 workstation-days), driving the idle-machine
//     and recruitment studies (Figure 3, availability claims);
//   - one month of parallel-job logs from a 32-node CM-5 at Los Alamos
//     (production and development runs), the MPP side of Figure 3;
//   - a two-day block-level file system trace from 42 Berkeley
//     workstations, driving the cooperative-caching study (Table 3);
//   - one week of NFS traffic from 230 clients of the departmental
//     servers (95% of messages under 200 bytes), driving the
//     bandwidth-versus-overhead study.
//
// Every generator is a pure function of its config and seed, so the
// experiment harness is deterministic end to end.
package trace

import (
	"math/rand"
	"sort"

	"github.com/nowproject/now/internal/sim"
)

// ActivityEvent marks a workstation's user turning active or going
// idle at time T.
type ActivityEvent struct {
	T      sim.Time
	WS     int
	Active bool
}

// ActivityTrace is a day-by-day record of interactive use across a
// cluster of workstations, in time order.
type ActivityTrace struct {
	Workstations int
	Length       sim.Duration
	Events       []ActivityEvent
}

// ActivityConfig shapes the synthetic interactive workload.
type ActivityConfig struct {
	// Workstations is the cluster size.
	Workstations int
	// Days of trace to generate.
	Days int
	// UnusedProb is the chance a workstation sees no user at all on a
	// given day. The paper measured that even during daytime hours more
	// than 60% of machines were available 100% of the time; EE-grad
	// workstations largely sit idle.
	UnusedProb float64
	// MeanSessions is the mean number of active sessions a present user
	// has per day; sessions cluster in working hours.
	MeanSessions float64
	// MeanSessionLen is the mean length of one active session.
	MeanSessionLen sim.Duration
	// Seed makes the trace reproducible.
	Seed int64
}

// DefaultActivityConfig mirrors the Berkeley measurement environment.
func DefaultActivityConfig(workstations, days int) ActivityConfig {
	return ActivityConfig{
		Workstations:   workstations,
		Days:           days,
		UnusedProb:     0.67,
		MeanSessions:   9,
		MeanSessionLen: 18 * sim.Minute,
		Seed:           1,
	}
}

// GenerateActivity produces an activity trace from cfg.
func GenerateActivity(cfg ActivityConfig) *ActivityTrace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &ActivityTrace{
		Workstations: cfg.Workstations,
		Length:       sim.Duration(cfg.Days) * 24 * sim.Hour,
	}
	for day := 0; day < cfg.Days; day++ {
		dayStart := sim.Time(day) * 24 * sim.Hour
		for ws := 0; ws < cfg.Workstations; ws++ {
			if rng.Float64() < cfg.UnusedProb {
				continue // nobody at this desk today
			}
			// Sessions cluster around a per-user workday: arrival
			// normally distributed around 9:30, departure around 18:00.
			arrive := dayStart + normalDur(rng, 9*sim.Hour+30*sim.Minute, sim.Hour)
			depart := dayStart + normalDur(rng, 18*sim.Hour, 90*sim.Minute)
			if depart <= arrive {
				continue
			}
			n := 1 + rng.Intn(int(2*cfg.MeanSessions)) // uniform, mean ≈ MeanSessions
			for s := 0; s < n; s++ {
				start := arrive + sim.Duration(rng.Int63n(int64(depart-arrive)))
				length := expDur(rng, cfg.MeanSessionLen)
				end := start + length
				if end > depart {
					end = depart
				}
				if end <= start {
					continue
				}
				tr.Events = append(tr.Events,
					ActivityEvent{T: start, WS: ws, Active: true},
					ActivityEvent{T: end, WS: ws, Active: false})
			}
		}
	}
	sort.Slice(tr.Events, func(i, j int) bool {
		if tr.Events[i].T != tr.Events[j].T {
			return tr.Events[i].T < tr.Events[j].T
		}
		if tr.Events[i].WS != tr.Events[j].WS {
			return tr.Events[i].WS < tr.Events[j].WS
		}
		// Deactivations before activations at the same instant.
		return !tr.Events[i].Active && tr.Events[j].Active
	})
	return tr
}

// normalDur draws a normal variate with the given mean and stddev,
// clamped to non-negative.
func normalDur(rng *rand.Rand, mean, stddev sim.Duration) sim.Duration {
	v := float64(mean) + rng.NormFloat64()*float64(stddev)
	if v < 0 {
		v = 0
	}
	return sim.Duration(v)
}

// expDur draws an exponential variate with the given mean.
func expDur(rng *rand.Rand, mean sim.Duration) sim.Duration {
	return sim.Duration(rng.ExpFloat64() * float64(mean))
}

// BusyIntervals returns, per workstation, the merged list of [start,
// end) intervals during which its user was active.
func (tr *ActivityTrace) BusyIntervals() [][][2]sim.Time {
	type open struct {
		start sim.Time
		depth int
	}
	states := make([]open, tr.Workstations)
	out := make([][][2]sim.Time, tr.Workstations)
	for _, ev := range tr.Events {
		st := &states[ev.WS]
		if ev.Active {
			if st.depth == 0 {
				st.start = ev.T
			}
			st.depth++
		} else if st.depth > 0 {
			st.depth--
			if st.depth == 0 {
				out[ev.WS] = append(out[ev.WS], [2]sim.Time{st.start, ev.T})
			}
		}
	}
	for ws := range states {
		if states[ws].depth > 0 {
			out[ws] = append(out[ws], [2]sim.Time{states[ws].start, tr.Length})
		}
	}
	for ws := range out {
		out[ws] = mergeIntervals(out[ws])
	}
	return out
}

func mergeIntervals(in [][2]sim.Time) [][2]sim.Time {
	if len(in) == 0 {
		return in
	}
	sort.Slice(in, func(i, j int) bool { return in[i][0] < in[j][0] })
	out := in[:1]
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if iv[0] <= last[1] {
			if iv[1] > last[1] {
				last[1] = iv[1]
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// FractionFullyIdle reports the fraction of workstations with no user
// activity at all inside [from, to) — the paper's "available 100% of
// the time" metric, typically evaluated over daytime hours.
func (tr *ActivityTrace) FractionFullyIdle(from, to sim.Time) float64 {
	busy := tr.BusyIntervals()
	idle := 0
	for ws := 0; ws < tr.Workstations; ws++ {
		touched := false
		for _, iv := range busy[ws] {
			if iv[0] < to && iv[1] > from {
				touched = true
				break
			}
		}
		if !touched {
			idle++
		}
	}
	if tr.Workstations == 0 {
		return 0
	}
	return float64(idle) / float64(tr.Workstations)
}

// AvailableAt reports how many workstations have no active user at t.
func (tr *ActivityTrace) AvailableAt(t sim.Time) int {
	busy := tr.BusyIntervals()
	n := 0
	for ws := 0; ws < tr.Workstations; ws++ {
		active := false
		for _, iv := range busy[ws] {
			if iv[0] <= t && t < iv[1] {
				active = true
				break
			}
		}
		if !active {
			n++
		}
	}
	return n
}

// Daytime returns the [from, to) window of working hours for a given
// day index, the window the paper's availability claims cover.
func Daytime(day int) (from, to sim.Time) {
	base := sim.Time(day) * 24 * sim.Hour
	return base + 9*sim.Hour, base + 17*sim.Hour
}
