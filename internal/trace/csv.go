package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/nowproject/now/internal/sim"
)

// CSV writers and readers for the synthetic traces, so runs can be
// exported for external analysis (cmd/nowtrace) and replayed from disk
// instead of regenerated.

// WriteActivityCSV writes an activity trace as t_ns,workstation,active.
func WriteActivityCSV(w io.Writer, tr *ActivityTrace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_ns", "workstation", "active"}); err != nil {
		return err
	}
	for _, ev := range tr.Events {
		if err := cw.Write([]string{
			strconv.FormatInt(int64(ev.T), 10),
			strconv.Itoa(ev.WS),
			strconv.FormatBool(ev.Active),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadActivityCSV parses WriteActivityCSV output. Workstation count and
// length are recovered from the data.
func ReadActivityCSV(r io.Reader) (*ActivityTrace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: activity csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty activity csv")
	}
	tr := &ActivityTrace{}
	for i, row := range rows[1:] {
		if len(row) != 3 {
			return nil, fmt.Errorf("trace: activity csv row %d has %d fields", i+2, len(row))
		}
		t, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: activity csv row %d: %w", i+2, err)
		}
		ws, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("trace: activity csv row %d: %w", i+2, err)
		}
		active, err := strconv.ParseBool(row[2])
		if err != nil {
			return nil, fmt.Errorf("trace: activity csv row %d: %w", i+2, err)
		}
		ev := ActivityEvent{T: sim.Time(t), WS: ws, Active: active}
		tr.Events = append(tr.Events, ev)
		if ws+1 > tr.Workstations {
			tr.Workstations = ws + 1
		}
		if ev.T > tr.Length {
			tr.Length = ev.T
		}
	}
	return tr, nil
}

// WriteJobsCSV writes a parallel job log.
func WriteJobsCSV(w io.Writer, jobs []ParallelJob) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "arrive_ns", "nodes", "work_ns", "grain_ns"}); err != nil {
		return err
	}
	for _, j := range jobs {
		if err := cw.Write([]string{
			strconv.Itoa(j.ID),
			strconv.FormatInt(int64(j.Arrive), 10),
			strconv.Itoa(j.Nodes),
			strconv.FormatInt(int64(j.Work), 10),
			strconv.FormatInt(int64(j.CommGrain), 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJobsCSV parses WriteJobsCSV output.
func ReadJobsCSV(r io.Reader) ([]ParallelJob, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: jobs csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty jobs csv")
	}
	out := make([]ParallelJob, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 5 {
			return nil, fmt.Errorf("trace: jobs csv row %d has %d fields", i+2, len(row))
		}
		var j ParallelJob
		var arrive, work, grain int64
		if j.ID, err = strconv.Atoi(row[0]); err == nil {
			if arrive, err = strconv.ParseInt(row[1], 10, 64); err == nil {
				if j.Nodes, err = strconv.Atoi(row[2]); err == nil {
					if work, err = strconv.ParseInt(row[3], 10, 64); err == nil {
						grain, err = strconv.ParseInt(row[4], 10, 64)
					}
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("trace: jobs csv row %d: %w", i+2, err)
		}
		j.Arrive = sim.Time(arrive)
		j.Work = sim.Duration(work)
		j.CommGrain = sim.Duration(grain)
		out = append(out, j)
	}
	return out, nil
}

// WriteFileAccessCSV writes a block-access trace.
func WriteFileAccessCSV(w io.Writer, accs []FileAccess) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_ns", "client", "file", "block", "write"}); err != nil {
		return err
	}
	for _, a := range accs {
		if err := cw.Write([]string{
			strconv.FormatInt(int64(a.T), 10),
			strconv.Itoa(a.Client),
			strconv.FormatUint(uint64(a.File), 10),
			strconv.FormatUint(uint64(a.Block), 10),
			strconv.FormatBool(a.Write),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadFileAccessCSV parses WriteFileAccessCSV output.
func ReadFileAccessCSV(r io.Reader) ([]FileAccess, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: file csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty file csv")
	}
	out := make([]FileAccess, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 5 {
			return nil, fmt.Errorf("trace: file csv row %d has %d fields", i+2, len(row))
		}
		t, err1 := strconv.ParseInt(row[0], 10, 64)
		client, err2 := strconv.Atoi(row[1])
		file, err3 := strconv.ParseUint(row[2], 10, 32)
		block, err4 := strconv.ParseUint(row[3], 10, 32)
		write, err5 := strconv.ParseBool(row[4])
		for _, err := range []error{err1, err2, err3, err4, err5} {
			if err != nil {
				return nil, fmt.Errorf("trace: file csv row %d: %w", i+2, err)
			}
		}
		out = append(out, FileAccess{
			T: sim.Time(t), Client: client,
			File: uint32(file), Block: uint32(block), Write: write,
		})
	}
	return out, nil
}
