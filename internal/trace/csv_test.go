package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestActivityCSVRoundTrip(t *testing.T) {
	orig := GenerateActivity(DefaultActivityConfig(6, 1))
	var buf bytes.Buffer
	if err := WriteActivityCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadActivityCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(orig.Events) {
		t.Fatalf("events: %d vs %d", len(got.Events), len(orig.Events))
	}
	for i := range got.Events {
		if got.Events[i] != orig.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	if got.Workstations > orig.Workstations {
		t.Fatalf("workstations: %d vs %d", got.Workstations, orig.Workstations)
	}
}

func TestJobsCSVRoundTrip(t *testing.T) {
	orig := GenerateJobs(DefaultJobTraceConfig(12 * 3600 * 1e9))
	var buf bytes.Buffer
	if err := WriteJobsCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("jobs: %d vs %d", len(got), len(orig))
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, got[i], orig[i])
		}
	}
}

func TestFileAccessCSVRoundTrip(t *testing.T) {
	cfg := DefaultFileTraceConfig()
	cfg.Accesses = 500
	orig := GenerateFileTrace(cfg)
	var buf bytes.Buffer
	if err := WriteFileAccessCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFileAccessCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("accesses: %d vs %d", len(got), len(orig))
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Fatalf("access %d differs", i)
		}
	}
}

func TestCSVReadersRejectGarbage(t *testing.T) {
	if _, err := ReadActivityCSV(strings.NewReader("")); err == nil {
		t.Error("empty activity accepted")
	}
	if _, err := ReadJobsCSV(strings.NewReader("id,arrive_ns,nodes,work_ns,grain_ns\nx,y,z,w,v\n")); err == nil {
		t.Error("garbage jobs accepted")
	}
	if _, err := ReadFileAccessCSV(strings.NewReader("h\n1\n")); err == nil {
		t.Error("short file rows accepted")
	}
}
