package trace

import (
	"math"
	"math/rand"

	"github.com/nowproject/now/internal/sim"
)

// FileAccess is one block-level file system operation by a client.
type FileAccess struct {
	T      sim.Time
	Client int
	File   uint32
	Block  uint32
	Write  bool
}

// FileTraceConfig shapes the two-day, 42-workstation file system trace
// behind the cooperative caching study.
type FileTraceConfig struct {
	Clients int
	Length  sim.Duration
	// Accesses is the total number of block operations to generate.
	Accesses int
	// BlockSize in bytes (8 KB in the study).
	BlockSize int
	// SharedFiles is the number of widely shared files (executables,
	// fonts, headers); SharedFileBlocks their size in blocks. Shared
	// files are read-mostly and Zipf-popular across every client.
	SharedFiles      int
	SharedFileBlocks int
	// PrivateFilesPerClient and PrivateFileBlocks describe each client's
	// own working set (mail, sources, simulation outputs).
	PrivateFilesPerClient int
	PrivateFileBlocks     int
	// SharedFraction of accesses go to the shared pool.
	SharedFraction float64
	// WriteFraction of accesses are writes (traces were read-dominated).
	WriteFraction float64
	// ZipfS is the Zipf skew for file popularity.
	ZipfS float64
	// PreferenceStride rotates each client's shared-file popularity
	// ranking by client*stride: users rerun *their* tools, with partial
	// overlap between colleagues. Zero gives every client the same
	// ranking.
	PreferenceStride int
	// Seed makes the trace reproducible.
	Seed int64
}

// DefaultFileTraceConfig mirrors the Table 3 setting: 42 client
// workstations over two days.
func DefaultFileTraceConfig() FileTraceConfig {
	return FileTraceConfig{
		Clients:               42,
		Length:                48 * sim.Hour,
		Accesses:              400_000,
		BlockSize:             8192,
		SharedFiles:           450,
		SharedFileBlocks:      32,
		PrivateFilesPerClient: 14,
		PrivateFileBlocks:     16,
		SharedFraction:        0.6,
		WriteFraction:         0.12,
		ZipfS:                 1.55,
		PreferenceStride:      11,
		Seed:                  1,
	}
}

// zipf draws ranks in [0, n) with P(r) ∝ 1/(r+1)^s using inversion on a
// precomputed CDF.
type zipf struct {
	cdf []float64
}

func newZipf(n int, s float64) *zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipf{cdf: cdf}
}

func (z *zipf) draw(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// GenerateFileTrace produces a block-access trace from cfg, in time
// order. File IDs: shared files occupy [0, SharedFiles); client c's
// private files occupy [SharedFiles + c*PrivateFilesPerClient, ...).
func GenerateFileTrace(cfg FileTraceConfig) []FileAccess {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sharedPop := newZipf(cfg.SharedFiles, cfg.ZipfS)
	privatePop := newZipf(cfg.PrivateFilesPerClient, cfg.ZipfS)
	out := make([]FileAccess, 0, cfg.Accesses)
	step := sim.Duration(int64(cfg.Length) / int64(cfg.Accesses+1))
	// Per-client sequential position for run-like access within a file.
	type cursor struct {
		file uint32
		next uint32
		left int
	}
	cursors := make([]cursor, cfg.Clients)
	t := sim.Time(0)
	for i := 0; i < cfg.Accesses; i++ {
		t += step
		c := rng.Intn(cfg.Clients)
		cur := &cursors[c]
		if cur.left <= 0 {
			// Pick a new file and a sequential run inside it.
			var file uint32
			var blocks int
			if rng.Float64() < cfg.SharedFraction {
				rank := sharedPop.draw(rng)
				file = uint32((rank + c*cfg.PreferenceStride) % cfg.SharedFiles)
				blocks = cfg.SharedFileBlocks
			} else {
				file = uint32(cfg.SharedFiles + c*cfg.PrivateFilesPerClient + privatePop.draw(rng))
				blocks = cfg.PrivateFileBlocks
			}
			start := rng.Intn(blocks)
			runLen := 1 + rng.Intn(blocks-start)
			if runLen > 24 {
				runLen = 24
			}
			cur.file = file
			cur.next = uint32(start)
			cur.left = runLen
		}
		out = append(out, FileAccess{
			T:      t,
			Client: c,
			File:   cur.file,
			Block:  cur.next,
			Write:  rng.Float64() < cfg.WriteFraction,
		})
		cur.next++
		cur.left--
	}
	return out
}

// NFSOp is one message of departmental NFS traffic: metadata queries
// (lookups, getattrs) are small request/reply pairs; data operations
// move a block.
type NFSOp struct {
	// RequestBytes and ReplyBytes are the wire payloads.
	RequestBytes int
	ReplyBytes   int
	// Metadata marks the small-RPC class (95% of traffic).
	Metadata bool
}

// NFSTraceConfig shapes the one-week, 230-client NFS mix.
type NFSTraceConfig struct {
	Ops int
	// MetadataFraction of messages are small metadata RPCs; the paper
	// measured 95% of NFS messages under 200 bytes.
	MetadataFraction float64
	BlockSize        int
	Seed             int64
}

// DefaultNFSTraceConfig mirrors the departmental measurement.
func DefaultNFSTraceConfig() NFSTraceConfig {
	return NFSTraceConfig{Ops: 100_000, MetadataFraction: 0.95, BlockSize: 8192, Seed: 1}
}

// GenerateNFS produces the operation mix.
func GenerateNFS(cfg NFSTraceConfig) []NFSOp {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]NFSOp, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		if rng.Float64() < cfg.MetadataFraction {
			out = append(out, NFSOp{
				RequestBytes: 60 + rng.Intn(80),
				ReplyBytes:   80 + rng.Intn(100),
				Metadata:     true,
			})
		} else {
			out = append(out, NFSOp{
				RequestBytes: 120,
				ReplyBytes:   cfg.BlockSize,
			})
		}
	}
	return out
}
