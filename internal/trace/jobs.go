package trace

import (
	"math/rand"
	"sort"

	"github.com/nowproject/now/internal/sim"
)

// ParallelJob is one entry of the LANL-style CM-5 job log: a gang of
// Nodes processes arriving at Arrive, each needing Work of CPU time,
// alternating computation with communication of the given intensity.
type ParallelJob struct {
	ID     int
	Arrive sim.Time
	Nodes  int
	// Work is per-process CPU demand.
	Work sim.Duration
	// CommGrain is how long a process computes between communication
	// phases; smaller means more tightly coupled.
	CommGrain sim.Duration
}

// JobTraceConfig shapes the parallel-machine workload.
type JobTraceConfig struct {
	// MachineNodes is the MPP's size (32 for the LANL CM-5 partition).
	MachineNodes int
	// Length of the trace.
	Length sim.Duration
	// MeanInterarrival between job submissions.
	MeanInterarrival sim.Duration
	// DevFraction of jobs are short development runs; the rest are
	// production runs, an order of magnitude longer.
	DevFraction float64
	// MeanDevWork and MeanProdWork are per-process CPU demands.
	MeanDevWork  sim.Duration
	MeanProdWork sim.Duration
	// Seed makes the trace reproducible.
	Seed int64
}

// DefaultJobTraceConfig mirrors the month of 32-node CM-5 data: a mix of
// production and development runs.
func DefaultJobTraceConfig(length sim.Duration) JobTraceConfig {
	return JobTraceConfig{
		MachineNodes:     32,
		Length:           length,
		MeanInterarrival: 25 * sim.Minute,
		DevFraction:      0.7,
		MeanDevWork:      4 * sim.Minute,
		MeanProdWork:     45 * sim.Minute,
		Seed:             1,
	}
}

// GenerateJobs produces a job log from cfg, sorted by arrival.
func GenerateJobs(cfg JobTraceConfig) []ParallelJob {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var jobs []ParallelJob
	t := sim.Time(0)
	id := 0
	for {
		t += expDur(rng, cfg.MeanInterarrival)
		if t >= cfg.Length {
			break
		}
		j := ParallelJob{ID: id, Arrive: t}
		id++
		// Node counts are powers of two up to the machine size, skewed
		// toward the full partition for production runs.
		if rng.Float64() < cfg.DevFraction {
			j.Work = expDur(rng, cfg.MeanDevWork)
			j.Nodes = 1 << rng.Intn(log2(cfg.MachineNodes)+1)
		} else {
			j.Work = expDur(rng, cfg.MeanProdWork)
			// Production: half use the full machine.
			if rng.Float64() < 0.5 {
				j.Nodes = cfg.MachineNodes
			} else {
				j.Nodes = 1 << (rng.Intn(log2(cfg.MachineNodes)) + 1)
			}
		}
		if j.Nodes > cfg.MachineNodes {
			j.Nodes = cfg.MachineNodes
		}
		if j.Work < 10*sim.Second {
			j.Work = 10 * sim.Second
		}
		// Coupling: development runs communicate less often.
		if j.Work < 10*sim.Minute {
			j.CommGrain = 200 * sim.Millisecond
		} else {
			j.CommGrain = 50 * sim.Millisecond
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].Arrive < jobs[k].Arrive })
	return jobs
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// TotalWork sums Nodes×Work over the log — the demand side of the
// Figure 3 capacity question.
func TotalWork(jobs []ParallelJob) sim.Duration {
	var total sim.Duration
	for _, j := range jobs {
		total += j.Work * sim.Duration(j.Nodes)
	}
	return total
}
