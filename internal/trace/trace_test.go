package trace

import (
	"testing"

	"github.com/nowproject/now/internal/sim"
)

func TestActivityDeterministic(t *testing.T) {
	cfg := DefaultActivityConfig(10, 2)
	a := GenerateActivity(cfg)
	b := GenerateActivity(cfg)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestActivityEventsSortedAndPaired(t *testing.T) {
	tr := GenerateActivity(DefaultActivityConfig(20, 3))
	var last sim.Time
	for _, ev := range tr.Events {
		if ev.T < last {
			t.Fatal("events out of order")
		}
		last = ev.T
		if ev.WS < 0 || ev.WS >= tr.Workstations {
			t.Fatalf("bad workstation %d", ev.WS)
		}
		if ev.T > tr.Length {
			t.Fatalf("event beyond trace length")
		}
	}
}

func TestDaytimeAvailabilityMatchesPaper(t *testing.T) {
	// Paper: "even during the daytime hours, more than 60 percent of
	// workstations were available 100 percent of the time."
	tr := GenerateActivity(DefaultActivityConfig(53, 10))
	total := 0.0
	for day := 0; day < 10; day++ {
		from, to := Daytime(day)
		total += tr.FractionFullyIdle(from, to)
	}
	avg := total / 10
	if avg < 0.60 {
		t.Fatalf("avg daytime fully-idle fraction = %.2f, want > 0.60", avg)
	}
	if avg > 0.85 {
		t.Fatalf("avg daytime fully-idle fraction = %.2f suspiciously high", avg)
	}
}

func TestBusyIntervalsMergedAndOrdered(t *testing.T) {
	tr := GenerateActivity(DefaultActivityConfig(30, 2))
	busy := tr.BusyIntervals()
	for ws, ivs := range busy {
		for i, iv := range ivs {
			if iv[0] >= iv[1] {
				t.Fatalf("ws %d: empty interval %v", ws, iv)
			}
			if i > 0 && ivs[i-1][1] > iv[0] {
				t.Fatalf("ws %d: overlapping intervals %v %v", ws, ivs[i-1], iv)
			}
		}
	}
}

func TestAvailableAtConsistentWithIntervals(t *testing.T) {
	tr := GenerateActivity(DefaultActivityConfig(40, 1))
	at := 13 * sim.Hour // mid-afternoon
	avail := tr.AvailableAt(at)
	busy := tr.BusyIntervals()
	count := 0
	for ws := 0; ws < tr.Workstations; ws++ {
		active := false
		for _, iv := range busy[ws] {
			if iv[0] <= at && at < iv[1] {
				active = true
			}
		}
		if !active {
			count++
		}
	}
	if avail != count {
		t.Fatalf("AvailableAt = %d, recount = %d", avail, count)
	}
}

func TestJobsRespectMachineSize(t *testing.T) {
	cfg := DefaultJobTraceConfig(30 * 24 * sim.Hour)
	jobs := GenerateJobs(cfg)
	if len(jobs) < 100 {
		t.Fatalf("only %d jobs in a month", len(jobs))
	}
	var lastArrive sim.Time
	for _, j := range jobs {
		if j.Nodes < 1 || j.Nodes > cfg.MachineNodes {
			t.Fatalf("job %d has %d nodes", j.ID, j.Nodes)
		}
		if j.Nodes&(j.Nodes-1) != 0 {
			t.Fatalf("job %d nodes %d not a power of two", j.ID, j.Nodes)
		}
		if j.Work <= 0 || j.CommGrain <= 0 {
			t.Fatalf("job %d degenerate: %+v", j.ID, j)
		}
		if j.Arrive < lastArrive {
			t.Fatal("jobs not sorted by arrival")
		}
		lastArrive = j.Arrive
	}
}

func TestJobMixHasProductionAndDev(t *testing.T) {
	jobs := GenerateJobs(DefaultJobTraceConfig(30 * 24 * sim.Hour))
	long, short := 0, 0
	for _, j := range jobs {
		if j.Work > 20*sim.Minute {
			long++
		} else {
			short++
		}
	}
	if long == 0 || short == 0 {
		t.Fatalf("mix degenerate: %d long, %d short", long, short)
	}
	if TotalWork(jobs) <= 0 {
		t.Fatal("no total work")
	}
}

func TestFileTraceShape(t *testing.T) {
	cfg := DefaultFileTraceConfig()
	cfg.Accesses = 50_000
	tr := GenerateFileTrace(cfg)
	if len(tr) != cfg.Accesses {
		t.Fatalf("got %d accesses", len(tr))
	}
	shared, private, writes := 0, 0, 0
	var last sim.Time
	for _, a := range tr {
		if a.T < last {
			t.Fatal("trace out of order")
		}
		last = a.T
		if a.Client < 0 || a.Client >= cfg.Clients {
			t.Fatalf("bad client %d", a.Client)
		}
		if int(a.File) < cfg.SharedFiles {
			shared++
			if int(a.Block) >= cfg.SharedFileBlocks {
				t.Fatalf("shared block %d out of range", a.Block)
			}
		} else {
			private++
			// Private file must belong to the accessing client.
			owner := (int(a.File) - cfg.SharedFiles) / cfg.PrivateFilesPerClient
			if owner != a.Client {
				t.Fatalf("client %d accessed client %d's private file", a.Client, owner)
			}
		}
		if a.Write {
			writes++
		}
	}
	// Access-level shared fraction exceeds the pick-level 0.6 because
	// shared files support longer sequential runs.
	sharedFrac := float64(shared) / float64(len(tr))
	if sharedFrac < 0.55 || sharedFrac > 0.85 {
		t.Fatalf("shared fraction = %.2f, want ≈0.6-0.8", sharedFrac)
	}
	writeFrac := float64(writes) / float64(len(tr))
	if writeFrac < 0.08 || writeFrac > 0.16 {
		t.Fatalf("write fraction = %.2f, want ≈0.12", writeFrac)
	}
}

func TestFileTraceHasCrossClientSharing(t *testing.T) {
	cfg := DefaultFileTraceConfig()
	cfg.Accesses = 50_000
	tr := GenerateFileTrace(cfg)
	readers := make(map[uint32]map[int]bool)
	for _, a := range tr {
		if int(a.File) < cfg.SharedFiles {
			if readers[a.File] == nil {
				readers[a.File] = make(map[int]bool)
			}
			readers[a.File][a.Client] = true
		}
	}
	multi := 0
	for _, rs := range readers {
		if len(rs) > 1 {
			multi++
		}
	}
	if multi < cfg.SharedFiles/4 {
		t.Fatalf("only %d shared files have multiple readers", multi)
	}
}

func TestNFSTraceMessageSizes(t *testing.T) {
	// Paper: 95% of NFS messages are less than 200 bytes.
	ops := GenerateNFS(DefaultNFSTraceConfig())
	small, total := 0, 0
	for _, op := range ops {
		total += 2 // request and reply are both messages
		if op.RequestBytes < 200 {
			small++
		}
		if op.ReplyBytes < 200 {
			small++
		}
	}
	frac := float64(small) / float64(total)
	if frac < 0.92 || frac > 0.99 {
		t.Fatalf("fraction of messages under 200B = %.3f, want ≈0.95", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	cfg := DefaultFileTraceConfig()
	cfg.Accesses = 50_000
	tr := GenerateFileTrace(cfg)
	counts := make(map[uint32]int)
	total := 0
	for _, a := range tr {
		if int(a.File) < cfg.SharedFiles {
			counts[a.File]++
			total++
		}
	}
	// File 0 (most popular) should dominate the tail.
	if counts[0] < total/cfg.SharedFiles {
		t.Fatalf("no popularity skew: file0=%d mean=%d", counts[0], total/cfg.SharedFiles)
	}
}
