package xfs

import (
	"errors"
	"testing"

	"github.com/nowproject/now/internal/sim"
)

// BenchmarkXFSReadDegraded measures cold-read bandwidth through the
// striped array before and after a storage-node crash, reporting both
// in virtual-time MB/s. This is the degraded-mode figure the fault
// studies lean on: the gap between healthy-MBps and degraded-MBps is
// the price of reconstruct-reads while a rebuild is pending. Several
// parallel reader streams keep the stores throughput-bound — a single
// latency-bound stream would hide the penalty (the reconstruct fans
// out across survivors and can even beat a lone single-store read).
func BenchmarkXFSReadDegraded(b *testing.B) {
	const (
		nodes     = 8
		blockSize = 4096
		blocks    = 64
		streams   = 4
	)
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine(1)
		cfg := DefaultConfig(nodes)
		cfg.BlockBytes = blockSize
		// Tiny caches: reads must miss locally and in peers, so the
		// bench measures the array path, not cooperative caching.
		cfg.ClientCacheBlocks = 4
		sys, err := New(e, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var healthyMBps, degradedMBps float64
		mbps := func(nbytes int64, d sim.Duration) float64 {
			return float64(nbytes) / 1e6 / (float64(d) / float64(sim.Second))
		}
		e.Spawn("bench", func(p *sim.Proc) {
			w := sys.Client(0)
			data := fill(blockSize, 7)
			for blk := 0; blk < blocks; blk++ {
				if err := w.Write(p, 1, uint32(blk), data); err != nil {
					b.Error(err)
					return
				}
			}
			if err := w.Sync(p); err != nil {
				b.Error(err)
				return
			}
			// read runs one full-file pass per stream concurrently and
			// returns the aggregate wall (virtual) time.
			read := func(name string) sim.Duration {
				wg := sim.NewWaitGroup(e, name)
				wg.Add(streams)
				t0 := p.Now()
				for r := 0; r < streams; r++ {
					c := sys.Client(2 + r)
					e.Spawn(name, func(rp *sim.Proc) {
						defer wg.Done()
						for blk := 0; blk < blocks; blk++ {
							if _, err := c.Read(rp, 1, uint32(blk)); err != nil {
								b.Error(err)
								return
							}
						}
					})
				}
				wg.Wait(p)
				return sim.Duration(p.Now() - t0)
			}
			healthyMBps = mbps(streams*blocks*blockSize, read("healthy"))
			sys.CrashStorage(nodes - 1)
			degradedMBps = mbps(streams*blocks*blockSize, read("degraded"))
			e.Stop()
		})
		if err := e.Run(); err != nil && !errors.Is(err, sim.ErrStopped) {
			b.Fatal(err)
		}
		e.Close()
		if i == 0 {
			b.ReportMetric(healthyMBps, "healthy-MBps")
			b.ReportMetric(degradedMBps, "degraded-MBps")
		}
	}
}

// BenchmarkXFSSeqScan measures a cold sequential scan of one file two
// ways — block-at-a-time Read on the serial protocol vs ReadAt windows
// on the pipelined path (range tokens + read-ahead + vectored stripe
// reads) — and reports both in virtual-time MB/s plus the speedup. This
// is the headline number for the pipelined data path: the gap is what
// batching the manager round trips and overlapping the fetches buys.
func BenchmarkXFSSeqScan(b *testing.B) {
	const (
		nodes     = 8
		blockSize = 4096
		blocks    = 64
		window    = 16
	)
	mbps := func(nbytes int64, d sim.Duration) float64 {
		return float64(nbytes) / 1e6 / (float64(d) / float64(sim.Second))
	}
	scan := func(cfg Config, vectored bool) sim.Duration {
		e := sim.NewEngine(1)
		defer e.Close()
		sys, err := New(e, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var elapsed sim.Duration
		e.Spawn("bench", func(p *sim.Proc) {
			defer e.Stop()
			w := sys.Client(0)
			data := fill(blockSize, 7)
			for blk := 0; blk < blocks; blk++ {
				if err := w.Write(p, 1, uint32(blk), data); err != nil {
					b.Error(err)
					return
				}
			}
			if err := w.Sync(p); err != nil {
				b.Error(err)
				return
			}
			r := sys.Client(3)
			t0 := p.Now()
			if vectored {
				for blk := 0; blk < blocks; blk += window {
					if _, err := r.ReadAt(p, 1, uint32(blk), window); err != nil {
						b.Error(err)
						return
					}
				}
			} else {
				for blk := 0; blk < blocks; blk++ {
					if _, err := r.Read(p, 1, uint32(blk)); err != nil {
						b.Error(err)
						return
					}
				}
			}
			elapsed = sim.Duration(p.Now() - t0)
		})
		if err := e.Run(); err != nil && !errors.Is(err, sim.ErrStopped) {
			b.Fatal(err)
		}
		return elapsed
	}
	var serialMBps, pipelinedMBps float64
	for i := 0; i < b.N; i++ {
		base := DefaultConfig(nodes)
		base.BlockBytes = blockSize
		base.ClientCacheBlocks = 8
		serial := scan(base, false)

		pipe := PipelinedConfig(nodes)
		pipe.BlockBytes = blockSize
		pipe.ClientCacheBlocks = 2 * window
		pipelined := scan(pipe, true)

		if i == 0 {
			serialMBps = mbps(blocks*blockSize, serial)
			pipelinedMBps = mbps(blocks*blockSize, pipelined)
		}
	}
	b.ReportMetric(serialMBps, "serial-MBps")
	b.ReportMetric(pipelinedMBps, "pipelined-MBps")
	b.ReportMetric(pipelinedMBps/serialMBps, "speedup")
}
