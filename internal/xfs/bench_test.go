package xfs

import (
	"errors"
	"testing"

	"github.com/nowproject/now/internal/sim"
)

// BenchmarkXFSReadDegraded measures cold-read bandwidth through the
// striped array before and after a storage-node crash, reporting both
// in virtual-time MB/s. This is the degraded-mode figure the fault
// studies lean on: the gap between healthy-MBps and degraded-MBps is
// the price of reconstruct-reads while a rebuild is pending. Several
// parallel reader streams keep the stores throughput-bound — a single
// latency-bound stream would hide the penalty (the reconstruct fans
// out across survivors and can even beat a lone single-store read).
func BenchmarkXFSReadDegraded(b *testing.B) {
	const (
		nodes     = 8
		blockSize = 4096
		blocks    = 64
		streams   = 4
	)
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine(1)
		cfg := DefaultConfig(nodes)
		cfg.BlockBytes = blockSize
		// Tiny caches: reads must miss locally and in peers, so the
		// bench measures the array path, not cooperative caching.
		cfg.ClientCacheBlocks = 4
		sys, err := New(e, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var healthyMBps, degradedMBps float64
		mbps := func(nbytes int64, d sim.Duration) float64 {
			return float64(nbytes) / 1e6 / (float64(d) / float64(sim.Second))
		}
		e.Spawn("bench", func(p *sim.Proc) {
			w := sys.Client(0)
			data := fill(blockSize, 7)
			for blk := 0; blk < blocks; blk++ {
				if err := w.Write(p, 1, uint32(blk), data); err != nil {
					b.Error(err)
					return
				}
			}
			if err := w.Sync(p); err != nil {
				b.Error(err)
				return
			}
			// read runs one full-file pass per stream concurrently and
			// returns the aggregate wall (virtual) time.
			read := func(name string) sim.Duration {
				wg := sim.NewWaitGroup(e, name)
				wg.Add(streams)
				t0 := p.Now()
				for r := 0; r < streams; r++ {
					c := sys.Client(2 + r)
					e.Spawn(name, func(rp *sim.Proc) {
						defer wg.Done()
						for blk := 0; blk < blocks; blk++ {
							if _, err := c.Read(rp, 1, uint32(blk)); err != nil {
								b.Error(err)
								return
							}
						}
					})
				}
				wg.Wait(p)
				return sim.Duration(p.Now() - t0)
			}
			healthyMBps = mbps(streams*blocks*blockSize, read("healthy"))
			sys.CrashStorage(nodes - 1)
			degradedMBps = mbps(streams*blocks*blockSize, read("degraded"))
			e.Stop()
		})
		if err := e.Run(); err != nil && !errors.Is(err, sim.ErrStopped) {
			b.Fatal(err)
		}
		e.Close()
		if i == 0 {
			b.ReportMetric(healthyMBps, "healthy-MBps")
			b.ReportMetric(degradedMBps, "degraded-MBps")
		}
	}
}
