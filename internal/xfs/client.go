package xfs

import (
	"errors"
	"fmt"

	"github.com/nowproject/now/internal/lru"
	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/swraid"
)

// ErrUnreadable is returned when a block cannot be produced (storage
// lost beyond redundancy, or its manager unreachable).
var ErrUnreadable = errors.New("xfs: block unreadable")

// cachedBlock is a client-cache entry.
type cachedBlock struct {
	data  []byte
	dirty bool // this client owns the block
	addr  int64
	// prefetched marks a block brought in by the read-ahead pipeline
	// that no Read has consumed yet (prefetch hit/waste accounting).
	prefetched bool
}

// Client is one node's view of the file system.
type Client struct {
	sys   *System
	node  int
	array *swraid.Array
	cache *lru.Cache[BlockKey, *cachedBlock]

	// Sequential-access detector state for read-ahead: the block we
	// expect a sequential reader to ask for next, and the run length so
	// far. A prefetch is in flight while prefetching is true (one
	// outstanding read-ahead per client keeps the pipeline bounded).
	seqFile     FileID
	seqNext     uint32
	seqRun      int
	prefetching bool
}

// tokArgs is a token request.
type tokArgs struct {
	key  BlockKey
	node int
	// write marks a yield performed for an ownership transfer: the old
	// owner must surrender its copy entirely (it is not in the readers
	// set, so no invalidation would ever reach it).
	write bool
}

// tokReply answers a token request.
type tokReply struct {
	// fetchFrom ≥ 0: read the block from this peer's cache.
	fetchFrom int
	// addr is the block's storage address (valid when written).
	addr    int64
	written bool
	// data carries the block directly when ownership migrates.
	data []byte
}

type evictArgs struct {
	key  BlockKey
	node int
	// sync means the client wrote the block back but keeps a clean
	// copy: it stays a reader, only ownership is released.
	sync bool
}

func (c *Client) register() {
	ep := c.sys.eps[c.node]
	ep.Register(hFetchBlk, c.onFetchBlk)
	ep.Register(hYield, c.onYield)
	ep.Register(hInval, c.onInval)
}

// ---- manager side of the protocol ----

// lookup finds or creates metadata for key.
func (m *manager) lookup(key BlockKey) *blockMeta {
	bm, ok := m.meta[key]
	if !ok {
		bm = &blockMeta{owner: -1, readers: make(map[int]struct{})}
		// Allocate a storage address: interleave across managers so
		// allocations never collide.
		bm.addr = m.nextAddr*int64(m.sys.cfg.Managers) + int64(m.idx)
		m.nextAddr++
		m.meta[key] = bm
	}
	return bm
}

// grantRead is the read-token core: the reply tells the client where
// the freshest copy is. A dirty owner is downgraded (it writes back and
// becomes a reader) so storage and caches converge.
func (m *manager) grantRead(p *sim.Proc, key BlockKey, node int) tokReply {
	bm := m.lookup(key)
	rep := tokReply{fetchFrom: -1, addr: bm.addr}
	if bm.owner >= 0 && bm.owner != node {
		// Downgrade the owner: it writes the block back and keeps a
		// clean copy; the reader fetches cache-to-cache from it.
		if _, err := m.sys.eps[m.node].Call(p, netsim.NodeID(bm.owner), hYield,
			tokArgs{key: key, node: node}, 32); err == nil {
			bm.readers[bm.owner] = struct{}{}
			rep.fetchFrom = bm.owner
			bm.written = true
		}
		bm.owner = -1
	} else if bm.owner == node {
		rep.fetchFrom = node // it already has the freshest copy
	} else {
		// Cooperative caching: serve from any current reader.
		best := -1
		for r := range bm.readers {
			if r != node && (best < 0 || r < best) {
				best = r
			}
		}
		rep.fetchFrom = best
	}
	bm.readers[node] = struct{}{}
	rep.written = bm.written
	rep.addr = bm.addr
	m.replicate(p, key, bm)
	return rep
}

// onReadTok grants a single read token.
func (m *manager) onReadTok(p *sim.Proc, msg am.Msg) (any, int) {
	args, ok := msg.Arg.(tokArgs)
	if !ok {
		return nil, 0
	}
	return m.grantRead(p, args.key, args.node), 48
}

// grantWrite is the ownership core: every other copy is invalidated,
// and if a previous owner exists its data migrates with the grant.
func (m *manager) grantWrite(p *sim.Proc, key BlockKey, node int) tokReply {
	bm := m.lookup(key)
	rep := tokReply{fetchFrom: -1, addr: bm.addr, written: bm.written}
	ep := m.sys.eps[m.node]
	if bm.owner >= 0 && bm.owner != node {
		sp := m.sys.obs.StartSpan("xfs.ownership.transfer", m.node)
		if sp != 0 {
			m.sys.obs.Annotate(sp, fmt.Sprintf("owner %d → %d", bm.owner, node))
		}
		// Migrate ownership: the old owner yields its (possibly dirty)
		// data, which rides back through the grant.
		if reply, err := ep.Call(p, netsim.NodeID(bm.owner), hYield,
			tokArgs{key: key, node: node, write: true}, 32); err == nil {
			if data, ok := reply.([]byte); ok {
				rep.data = data
				bm.written = true
				rep.written = true
			}
		}
		m.sys.stats.OwnerYields++
		bm.owner = -1
		m.sys.obs.EndSpan(sp)
	}
	// Invalidate all readers (deterministic order).
	for r := 0; r < m.sys.cfg.Nodes; r++ {
		if _, isReader := bm.readers[r]; !isReader || r == node {
			continue
		}
		_ = ep.Send(p, netsim.NodeID(r), hInval, key, 24)
		m.sys.stats.Invalidations++
		delete(bm.readers, r)
	}
	delete(bm.readers, node)
	bm.owner = node
	m.replicate(p, key, bm)
	return rep
}

// onWriteTok grants single-block ownership.
func (m *manager) onWriteTok(p *sim.Proc, msg am.Msg) (any, int) {
	args, ok := msg.Arg.(tokArgs)
	if !ok {
		return nil, 0
	}
	rep := m.grantWrite(p, args.key, args.node)
	return rep, 48 + len(rep.data)
}

// applyEvict is the directory update behind evict/sync notes.
func (m *manager) applyEvict(p *sim.Proc, args evictArgs) {
	if bm, ok := m.meta[args.key]; ok {
		if args.sync {
			bm.readers[args.node] = struct{}{}
		} else {
			delete(bm.readers, args.node)
		}
		if bm.owner == args.node {
			bm.owner = -1
			bm.written = true // owner wrote back before releasing
		}
		m.replicate(p, args.key, bm)
	}
}

// onEvictNote keeps the directory accurate when clients drop copies.
func (m *manager) onEvictNote(p *sim.Proc, msg am.Msg) (any, int) {
	args, ok := msg.Arg.(evictArgs)
	if !ok {
		return nil, 0
	}
	m.applyEvict(p, args)
	return nil, 0
}

// ---- client side ----

// onFetchBlk serves a cache-to-cache transfer.
func (c *Client) onFetchBlk(p *sim.Proc, msg am.Msg) (any, int) {
	key, ok := msg.Arg.(BlockKey)
	if !ok {
		return nil, 0
	}
	cb, ok := c.cache.Peek(key)
	if !ok {
		return nil, 0
	}
	out := make([]byte, len(cb.data))
	copy(out, cb.data)
	return out, len(out)
}

// onYield surrenders this client's ownership: write the dirty block
// back to storage and return the data. For a read-triggered downgrade
// the client keeps a clean copy (it becomes a reader); for a
// write-triggered transfer it drops the copy entirely — it will not be
// in the new directory's reader set, so no later invalidation could
// reach it.
func (c *Client) onYield(p *sim.Proc, msg am.Msg) (any, int) {
	args, ok := msg.Arg.(tokArgs)
	if !ok {
		return nil, 0
	}
	cb, ok := c.cache.Peek(args.key)
	if !ok {
		return nil, 0
	}
	if cb.dirty {
		if err := c.array.WriteChunks(p, cb.addr, cb.data); err == nil {
			c.sys.stats.StorageWrites++
			cb.dirty = false
		}
	}
	out := make([]byte, len(cb.data))
	copy(out, cb.data)
	if args.write {
		c.cache.Remove(args.key)
	}
	return out, len(out)
}

// onInval drops this client's copy (writing back first if it somehow
// still owns it — belt and braces; the protocol yields owners).
func (c *Client) onInval(p *sim.Proc, msg am.Msg) (any, int) {
	key, ok := msg.Arg.(BlockKey)
	if !ok {
		return nil, 0
	}
	if cb, ok := c.cache.Peek(key); ok && cb.dirty {
		if err := c.array.WriteChunks(p, cb.addr, cb.data); err == nil {
			c.sys.stats.StorageWrites++
		}
	}
	c.cache.Remove(key)
	return nil, 0
}

// insert caches a block, handling eviction: dirty victims are written
// back to the RAID; the manager is told either way.
func (c *Client) insert(p *sim.Proc, key BlockKey, cb *cachedBlock) {
	vKey, vVal, evicted := c.cache.Put(key, cb)
	if !evicted {
		return
	}
	if vVal.prefetched {
		c.sys.stats.PrefetchWasted++
	}
	if vVal.dirty {
		if err := c.array.WriteChunks(p, vVal.addr, vVal.data); err == nil {
			c.sys.stats.StorageWrites++
		}
	}
	mgr := c.sys.managerOf(vKey.File)
	_ = c.sys.eps[c.node].Send(p, netsim.NodeID(mgr.node), hEvictNote,
		evictArgs{key: vKey, node: c.node}, 32)
}

// getLocal serves a read from the local cache, consuming the prefetch
// mark: a block the read-ahead pipeline staged counts as a hit the
// first time a Read actually uses it.
func (c *Client) getLocal(key BlockKey) ([]byte, bool) {
	cb, ok := c.cache.Get(key)
	if !ok {
		return nil, false
	}
	if cb.prefetched {
		cb.prefetched = false
		c.sys.stats.PrefetchHits++
	}
	out := make([]byte, len(cb.data))
	copy(out, cb.data)
	return out, true
}

// Read returns the block's contents, obtaining a read token and the
// freshest copy from wherever it lives. When the configuration enables
// read-ahead, a detected sequential run prefetches the next blocks
// concurrently with the application (see pipeline.go).
func (c *Client) Read(p *sim.Proc, f FileID, blk uint32) ([]byte, error) {
	key := BlockKey{File: f, Block: blk}
	c.sys.stats.Reads++
	// The detector runs before the fetch so a triggered read-ahead
	// overlaps this block's own miss instead of starting after it.
	c.noteSequential(p, f, blk)
	if data, ok := c.getLocal(key); ok {
		c.sys.stats.LocalHits++
		return data, nil
	}
	mgr := c.sys.managerOf(f)
	reply, err := c.sys.eps[c.node].Call(p, netsim.NodeID(mgr.node), hReadTok,
		tokArgs{key: key, node: c.node}, 40)
	if err != nil {
		return nil, fmt.Errorf("xfs: read token: %w", err)
	}
	rep, ok := reply.(tokReply)
	if !ok {
		return nil, fmt.Errorf("%w: bad token reply", ErrUnreadable)
	}
	var data []byte
	if rep.fetchFrom >= 0 && rep.fetchFrom != c.node {
		if got, err := c.sys.eps[c.node].Call(p, netsim.NodeID(rep.fetchFrom), hFetchBlk, key, 32); err == nil {
			if bytes, ok := got.([]byte); ok && bytes != nil {
				data = bytes
				c.sys.stats.CacheTransfers++
			}
		}
	}
	if data == nil {
		if !rep.written {
			// Never written: a fresh block reads as zeros.
			data = make([]byte, c.sys.cfg.BlockBytes)
		} else {
			data, err = c.array.ReadChunks(p, rep.addr, 1)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrUnreadable, err)
			}
			c.sys.stats.StorageReads++
		}
	}
	c.insert(p, key, &cachedBlock{data: data, addr: rep.addr})
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Write replaces the block's contents (block-granularity writes, like a
// log-structured segment writer), obtaining ownership first.
func (c *Client) Write(p *sim.Proc, f FileID, blk uint32, data []byte) error {
	if len(data) != c.sys.cfg.BlockBytes {
		return fmt.Errorf("xfs: write of %d bytes, block is %d", len(data), c.sys.cfg.BlockBytes)
	}
	key := BlockKey{File: f, Block: blk}
	c.sys.stats.Writes++
	if cb, ok := c.cache.Get(key); ok && cb.dirty {
		copy(cb.data, data) // already the owner
		return nil
	}
	mgr := c.sys.managerOf(f)
	reply, err := c.sys.eps[c.node].Call(p, netsim.NodeID(mgr.node), hWriteTok,
		tokArgs{key: key, node: c.node}, 40)
	if err != nil {
		return fmt.Errorf("xfs: write token: %w", err)
	}
	rep, ok := reply.(tokReply)
	if !ok {
		return fmt.Errorf("xfs: bad write-token reply")
	}
	buf := make([]byte, c.sys.cfg.BlockBytes)
	copy(buf, data)
	c.insert(p, key, &cachedBlock{data: buf, dirty: true, addr: rep.addr})
	return nil
}

// Sync writes back every dirty block this client owns. With
// Config.WriteBehind set it is a group commit: one vectored RAID write
// covers every dirty block (stripes issued concurrently) and the
// per-manager sync notes travel in batches; otherwise each block is
// written back serially, the pre-pipeline behaviour.
func (c *Client) Sync(p *sim.Proc) error {
	if c.sys.cfg.WriteBehind {
		return c.groupCommit(p)
	}
	var firstErr error
	for _, key := range c.cache.Keys() {
		cb, ok := c.cache.Peek(key)
		if !ok || !cb.dirty {
			continue
		}
		if err := c.array.WriteChunks(p, cb.addr, cb.data); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		c.sys.stats.StorageWrites++
		cb.dirty = false
		mgr := c.sys.managerOf(key.File)
		_ = c.sys.eps[c.node].Send(p, netsim.NodeID(mgr.node), hEvictNote,
			evictArgs{key: key, node: c.node, sync: true}, 32)
	}
	return firstErr
}

// Array exposes the client's RAID view (failure-injection tests mark
// stores failed through it).
func (c *Client) Array() *swraid.Array { return c.array }

// CacheLen reports resident blocks (tests).
func (c *Client) CacheLen() int { return c.cache.Len() }
