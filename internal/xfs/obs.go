package xfs

import "github.com/nowproject/now/internal/obs"

// Instrument attaches metrics and span tracing to the system. Call once
// per registry, after New. A nil registry is a no-op. The Stats
// counters are mirrored into gauges at snapshot time; ownership
// transfers additionally record an xfs.ownership.transfer span (node =
// the manager's hosting node, annotated with old → new owner).
//
// System metrics (names per docs/OBSERVABILITY.md):
//
//	xfs.reads                 client reads (sampled)
//	xfs.writes                client writes (sampled)
//	xfs.hits.local            reads served from the local cache (sampled)
//	xfs.transfers.cache       reads served from a peer's cache (sampled)
//	xfs.reads.storage         reads that went to the RAID array (sampled)
//	xfs.writes.storage        log writes to the RAID array (sampled)
//	xfs.invalidations         reader copies invalidated on write (sampled)
//	xfs.owner.yields          ownership migrations between writers (sampled)
//	xfs.failovers             manager failovers to the standby (sampled)
func (sys *System) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	sys.obs = r
	mirror := []struct {
		name string
		get  func(*Stats) int64
	}{
		{"xfs.reads", func(s *Stats) int64 { return s.Reads }},
		{"xfs.writes", func(s *Stats) int64 { return s.Writes }},
		{"xfs.hits.local", func(s *Stats) int64 { return s.LocalHits }},
		{"xfs.transfers.cache", func(s *Stats) int64 { return s.CacheTransfers }},
		{"xfs.reads.storage", func(s *Stats) int64 { return s.StorageReads }},
		{"xfs.writes.storage", func(s *Stats) int64 { return s.StorageWrites }},
		{"xfs.invalidations", func(s *Stats) int64 { return s.Invalidations }},
		{"xfs.owner.yields", func(s *Stats) int64 { return s.OwnerYields }},
		{"xfs.failovers", func(s *Stats) int64 { return s.Failovers }},
	}
	gs := make([]*obs.Gauge, len(mirror))
	for i, m := range mirror {
		gs[i] = r.Gauge(m.name)
	}
	r.OnSample(func() {
		for i, m := range mirror {
			gs[i].Set(m.get(&sys.stats))
		}
	})
}
