package xfs

import "github.com/nowproject/now/internal/obs"

// Instrument attaches metrics and span tracing to the system. Call once
// per registry, after New. A nil registry is a no-op. The Stats
// counters are mirrored into gauges at snapshot time; ownership
// transfers additionally record an xfs.ownership.transfer span (node =
// the manager's hosting node, annotated with old → new owner).
//
// System metrics (names per docs/OBSERVABILITY.md):
//
//	xfs.reads                 client reads (sampled)
//	xfs.writes                client writes (sampled)
//	xfs.hits.local            reads served from the local cache (sampled)
//	xfs.transfers.cache       reads served from a peer's cache (sampled)
//	xfs.reads.storage         reads that went to the RAID array (sampled)
//	xfs.writes.storage        log writes to the RAID array (sampled)
//	xfs.invalidations         reader copies invalidated on write (sampled)
//	xfs.owner.yields          ownership migrations between writers (sampled)
//	xfs.failovers             manager failovers to the standby (sampled)
//	xfs.batch.range.reads     range-token read round trips (sampled)
//	xfs.batch.range.writes    range-token write round trips (sampled)
//	xfs.batch.tokens          block tokens granted via range messages (sampled)
//	xfs.batch.evicts          sync/evict notes delivered in batches (sampled)
//	xfs.batch.commits         write-behind group commits (sampled)
//	xfs.prefetch.issued       blocks fetched by read-ahead (sampled)
//	xfs.prefetch.hits         reads served by a prefetched block (sampled)
//	xfs.prefetch.wasted       prefetched blocks evicted unread (sampled)
func (sys *System) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	sys.obs = r
	mirror := []struct {
		name string
		get  func(*Stats) int64
	}{
		{"xfs.reads", func(s *Stats) int64 { return s.Reads }},
		{"xfs.writes", func(s *Stats) int64 { return s.Writes }},
		{"xfs.hits.local", func(s *Stats) int64 { return s.LocalHits }},
		{"xfs.transfers.cache", func(s *Stats) int64 { return s.CacheTransfers }},
		{"xfs.reads.storage", func(s *Stats) int64 { return s.StorageReads }},
		{"xfs.writes.storage", func(s *Stats) int64 { return s.StorageWrites }},
		{"xfs.invalidations", func(s *Stats) int64 { return s.Invalidations }},
		{"xfs.owner.yields", func(s *Stats) int64 { return s.OwnerYields }},
		{"xfs.failovers", func(s *Stats) int64 { return s.Failovers }},
		{"xfs.batch.range.reads", func(s *Stats) int64 { return s.RangeReads }},
		{"xfs.batch.range.writes", func(s *Stats) int64 { return s.RangeWrites }},
		{"xfs.batch.tokens", func(s *Stats) int64 { return s.BatchedTokens }},
		{"xfs.batch.evicts", func(s *Stats) int64 { return s.BatchedEvicts }},
		{"xfs.batch.commits", func(s *Stats) int64 { return s.GroupCommits }},
		{"xfs.prefetch.issued", func(s *Stats) int64 { return s.PrefetchIssued }},
		{"xfs.prefetch.hits", func(s *Stats) int64 { return s.PrefetchHits }},
		{"xfs.prefetch.wasted", func(s *Stats) int64 { return s.PrefetchWasted }},
	}
	gs := make([]*obs.Gauge, len(mirror))
	for i, m := range mirror {
		gs[i] = r.Gauge(m.name)
	}
	r.OnSample(func() {
		for i, m := range mirror {
			gs[i].Set(m.get(&sys.stats))
		}
	})
}
