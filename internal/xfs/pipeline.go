package xfs

// The pipelined data path. The serial Read/Write protocol pays one
// manager round trip and one data fetch per block; a sequential scan
// therefore runs at single-request latency no matter how much disk and
// network bandwidth the building has. This file closes that gap:
//
//   - range tokens: one manager round trip grants read or write tokens
//     for a contiguous block run (hReadRangeTok/hWriteRangeTok) instead
//     of per-block hReadTok/hWriteTok traffic;
//   - vectored client ops: ReadAt/WriteAt span multiple blocks, with
//     peer-cache fetches and RAID stripe reads issued as concurrent sim
//     procs (swraid.ReadVec schedules all disks at once);
//   - read-ahead: a detected sequential run prefetches the next
//     Config.ReadAhead blocks concurrently with the application;
//   - write-behind group commit: Sync flushes every dirty block through
//     one swraid.WriteVec and batches the per-manager sync notes
//     (hEvictBatch).

import (
	"fmt"
	"sort"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// rangeTokArgs requests tokens for the contiguous run
// [start, start+count) of file — all blocks of one file hash to the
// same manager, so one message reaches the whole run's directory.
type rangeTokArgs struct {
	file  FileID
	start uint32
	count int
	node  int
	write bool
}

// rangeTokReply carries one grant per block of the run, in block order.
type rangeTokReply struct {
	blocks []tokReply
}

// evictBatchArgs carries several evict/sync notes in one message. All
// notes address blocks of files managed by the destination manager.
type evictBatchArgs struct {
	notes []evictArgs
}

// ---- manager side ----

// onReadRangeTok grants a read token for every block of the run with
// one round trip. Grants happen in block order, so directory updates
// and any owner downgrades are as deterministic as the serial path.
func (m *manager) onReadRangeTok(p *sim.Proc, msg am.Msg) (any, int) {
	args, ok := msg.Arg.(rangeTokArgs)
	if !ok || args.count <= 0 {
		return nil, 0
	}
	rep := rangeTokReply{blocks: make([]tokReply, args.count)}
	bytes := 16
	for i := 0; i < args.count; i++ {
		key := BlockKey{File: args.file, Block: args.start + uint32(i)}
		rep.blocks[i] = m.grantRead(p, key, args.node)
		bytes += 48
	}
	return rep, bytes
}

// onWriteRangeTok grants ownership of every block of the run with one
// round trip: invalidations and owner yields still run per block (the
// coherence protocol is unchanged), but the requester pays one message
// latency for the whole run.
func (m *manager) onWriteRangeTok(p *sim.Proc, msg am.Msg) (any, int) {
	args, ok := msg.Arg.(rangeTokArgs)
	if !ok || args.count <= 0 {
		return nil, 0
	}
	rep := rangeTokReply{blocks: make([]tokReply, args.count)}
	bytes := 16
	for i := 0; i < args.count; i++ {
		key := BlockKey{File: args.file, Block: args.start + uint32(i)}
		rep.blocks[i] = m.grantWrite(p, key, args.node)
		bytes += 48 + len(rep.blocks[i].data)
	}
	return rep, bytes
}

// onEvictBatch applies a batch of evict/sync notes.
func (m *manager) onEvictBatch(p *sim.Proc, msg am.Msg) (any, int) {
	args, ok := msg.Arg.(evictBatchArgs)
	if !ok {
		return nil, 0
	}
	for _, n := range args.notes {
		m.applyEvict(p, n)
	}
	return nil, 0
}

// ---- client side ----

// blockSource says where a fetched block's bytes came from, for
// deterministic post-join stats accounting.
type blockSource int

const (
	srcNone blockSource = iota
	srcZero
	srcPeer
	srcStorage
)

// fetchRange brings every block of [start, start+count) that is not
// already cached into the local cache, pipelined: one range-token round
// trip for the covering run, then peer-cache fetches as concurrent
// procs and all storage reads in a single vectored array op. With
// prefetched set the inserted blocks are marked for read-ahead
// accounting.
func (c *Client) fetchRange(p *sim.Proc, f FileID, start uint32, count int, prefetched bool) error {
	type missing struct {
		key  BlockKey
		rep  tokReply
		data []byte
		src  blockSource
		err  error
	}
	var misses []*missing
	for i := 0; i < count; i++ {
		key := BlockKey{File: f, Block: start + uint32(i)}
		if _, ok := c.cache.Peek(key); ok {
			continue
		}
		misses = append(misses, &missing{key: key})
	}
	if len(misses) == 0 {
		return nil
	}
	// One round trip grants tokens for the covering run (cached blocks
	// inside the cover are re-granted — we are already in their reader
	// sets, so the directory does not change).
	first := misses[0].key.Block
	last := misses[len(misses)-1].key.Block
	cover := int(last-first) + 1
	mgr := c.sys.managerOf(f)
	reply, err := c.sys.eps[c.node].Call(p, netsim.NodeID(mgr.node), hReadRangeTok,
		rangeTokArgs{file: f, start: first, count: cover, node: c.node}, 44)
	if err != nil {
		return fmt.Errorf("xfs: range read token: %w", err)
	}
	rep, ok := reply.(rangeTokReply)
	if !ok || len(rep.blocks) != cover {
		return fmt.Errorf("%w: bad range-token reply", ErrUnreadable)
	}
	c.sys.stats.RangeReads++
	c.sys.stats.BatchedTokens += int64(cover)

	// Classify each miss and fan out: peer fetches overlap each other
	// and the vectored storage read.
	wg := sim.NewWaitGroup(c.sys.eng, "xfs/fetchrange")
	var fromStorage []*missing
	for _, ms := range misses {
		ms.rep = rep.blocks[ms.key.Block-first]
		switch {
		case ms.rep.fetchFrom >= 0 && ms.rep.fetchFrom != c.node:
			ms := ms
			wg.Add(1)
			c.sys.eng.Spawn("xfs/fetchpeer", func(wp *sim.Proc) {
				defer wg.Done()
				if got, err := c.sys.eps[c.node].Call(wp, netsim.NodeID(ms.rep.fetchFrom),
					hFetchBlk, ms.key, 32); err == nil {
					if bytes, ok := got.([]byte); ok && bytes != nil {
						ms.data = bytes
						ms.src = srcPeer
						return
					}
				}
				// The peer raced an eviction (or crashed): fall back to
				// storage, or zeros for a never-written block.
				if !ms.rep.written {
					ms.data = make([]byte, c.sys.cfg.BlockBytes)
					ms.src = srcZero
					return
				}
				data, err := c.array.ReadChunks(wp, ms.rep.addr, 1)
				if err != nil {
					ms.err = fmt.Errorf("%w: %v", ErrUnreadable, err)
					return
				}
				ms.data = data
				ms.src = srcStorage
			})
		case !ms.rep.written:
			ms.data = make([]byte, c.sys.cfg.BlockBytes)
			ms.src = srcZero
		default:
			fromStorage = append(fromStorage, ms)
		}
	}
	if len(fromStorage) > 0 {
		// All storage blocks ride one vectored read: the array issues
		// every per-disk request concurrently.
		sort.Slice(fromStorage, func(i, j int) bool { return fromStorage[i].rep.addr < fromStorage[j].rep.addr })
		wg.Add(1)
		c.sys.eng.Spawn("xfs/fetchstripes", func(wp *sim.Proc) {
			defer wg.Done()
			logicals := make([]int64, len(fromStorage))
			for i, ms := range fromStorage {
				logicals[i] = ms.rep.addr
			}
			chunks, err := c.array.ReadVec(wp, logicals)
			if err != nil {
				for _, ms := range fromStorage {
					ms.err = fmt.Errorf("%w: %v", ErrUnreadable, err)
				}
				return
			}
			for i, ms := range fromStorage {
				ms.data = chunks[i]
				ms.src = srcStorage
			}
		})
	}
	wg.Wait(p)

	// Join: account and insert in block order so counters and LRU state
	// are independent of fetch completion order.
	var firstErr error
	for _, ms := range misses {
		if ms.err != nil || ms.data == nil {
			if firstErr == nil {
				if ms.err != nil {
					firstErr = ms.err
				} else {
					firstErr = ErrUnreadable
				}
			}
			continue
		}
		switch ms.src {
		case srcPeer:
			c.sys.stats.CacheTransfers++
		case srcStorage:
			c.sys.stats.StorageReads++
		}
		if prefetched {
			c.sys.stats.PrefetchIssued++
		}
		c.insert(p, ms.key, &cachedBlock{data: ms.data, addr: ms.rep.addr, prefetched: prefetched})
	}
	return firstErr
}

// ReadAt returns the contents of the contiguous block run
// [blk, blk+count) of f, pipelined: local hits are served immediately,
// and all misses share one range-token round trip with their peer and
// storage fetches issued concurrently. It is the vectored counterpart
// of Read and the fast path for sequential scans.
func (c *Client) ReadAt(p *sim.Proc, f FileID, blk uint32, count int) ([]byte, error) {
	if count <= 0 {
		return nil, fmt.Errorf("xfs: ReadAt of %d blocks", count)
	}
	bb := c.sys.cfg.BlockBytes
	out := make([]byte, count*bb)
	c.sys.stats.Reads += int64(count)
	// Note the run before serving it: a triggered read-ahead of the
	// blocks past this window overlaps the window's own fetches.
	c.noteSequentialRun(p, f, blk, count)
	missing := false
	have := make([]bool, count)
	for i := 0; i < count; i++ {
		key := BlockKey{File: f, Block: blk + uint32(i)}
		if data, ok := c.getLocal(key); ok {
			c.sys.stats.LocalHits++
			copy(out[i*bb:], data)
			have[i] = true
		} else {
			missing = true
		}
	}
	if missing {
		if err := c.fetchRange(p, f, blk, count, false); err != nil {
			return nil, err
		}
		for i := 0; i < count; i++ {
			if have[i] {
				continue
			}
			key := BlockKey{File: f, Block: blk + uint32(i)}
			data, ok := c.getLocal(key)
			if !ok {
				// The run overflowed the cache and an early block was
				// already evicted; re-read it individually.
				var err error
				data, err = c.Read(p, f, blk+uint32(i))
				if err != nil {
					return nil, err
				}
				c.sys.stats.Reads-- // the fallback Read double-counted
			}
			copy(out[i*bb:], data)
		}
	}
	return out, nil
}

// WriteAt replaces the contents of the contiguous block run starting at
// blk with data (len(data) must be a multiple of the block size). All
// blocks not already owned share one write-range token round trip; the
// dirty data stays write-behind in the cache until Sync or eviction.
func (c *Client) WriteAt(p *sim.Proc, f FileID, blk uint32, data []byte) error {
	bb := c.sys.cfg.BlockBytes
	count := len(data) / bb
	if count == 0 || count*bb != len(data) {
		return fmt.Errorf("xfs: WriteAt of %d bytes, block is %d", len(data), bb)
	}
	c.sys.stats.Writes += int64(count)
	var need []int // run indexes we do not own yet
	for i := 0; i < count; i++ {
		key := BlockKey{File: f, Block: blk + uint32(i)}
		if cb, ok := c.cache.Get(key); ok && cb.dirty {
			copy(cb.data, data[i*bb:(i+1)*bb]) // already the owner
		} else {
			need = append(need, i)
		}
	}
	if len(need) == 0 {
		return nil
	}
	first := blk + uint32(need[0])
	last := blk + uint32(need[len(need)-1])
	cover := int(last-first) + 1
	mgr := c.sys.managerOf(f)
	reply, err := c.sys.eps[c.node].Call(p, netsim.NodeID(mgr.node), hWriteRangeTok,
		rangeTokArgs{file: f, start: first, count: cover, node: c.node, write: true}, 44)
	if err != nil {
		return fmt.Errorf("xfs: range write token: %w", err)
	}
	rep, ok := reply.(rangeTokReply)
	if !ok || len(rep.blocks) != cover {
		return fmt.Errorf("xfs: bad range write-token reply")
	}
	c.sys.stats.RangeWrites++
	c.sys.stats.BatchedTokens += int64(cover)
	for _, i := range need {
		tr := rep.blocks[blk+uint32(i)-first]
		buf := make([]byte, bb)
		copy(buf, data[i*bb:(i+1)*bb])
		c.insert(p, BlockKey{File: f, Block: blk + uint32(i)},
			&cachedBlock{data: buf, dirty: true, addr: tr.addr})
	}
	return nil
}

// groupCommit is the write-behind Sync: every dirty block rides one
// vectored RAID write (independent stripes committed concurrently),
// then each manager gets a single batched sync note instead of one
// message per block.
func (c *Client) groupCommit(p *sim.Proc) error {
	type dirtyBlock struct {
		key BlockKey
		cb  *cachedBlock
	}
	var dirty []dirtyBlock
	for _, key := range c.cache.Keys() {
		if cb, ok := c.cache.Peek(key); ok && cb.dirty {
			dirty = append(dirty, dirtyBlock{key: key, cb: cb})
		}
	}
	if len(dirty) == 0 {
		return nil
	}
	// WriteVec wants ascending logical addresses; every block has a
	// distinct allocation, so the order is total.
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].cb.addr < dirty[j].cb.addr })
	logicals := make([]int64, len(dirty))
	chunks := make([][]byte, len(dirty))
	for i, d := range dirty {
		logicals[i] = d.cb.addr
		chunks[i] = d.cb.data
	}
	if err := c.array.WriteVec(p, logicals, chunks); err != nil {
		return err
	}
	c.sys.stats.StorageWrites += int64(len(dirty))
	c.sys.stats.GroupCommits++
	for _, d := range dirty {
		d.cb.dirty = false
	}
	// One batched note per manager, managers in index order, notes in
	// (file, block) order — deterministic and O(managers) messages.
	byMgr := make(map[int][]evictArgs)
	for _, d := range dirty {
		idx := int(d.key.File) % c.sys.cfg.Managers
		byMgr[idx] = append(byMgr[idx], evictArgs{key: d.key, node: c.node, sync: true})
	}
	idxs := make([]int, 0, len(byMgr))
	for idx := range byMgr {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		notes := byMgr[idx]
		sort.Slice(notes, func(i, j int) bool {
			if notes[i].key.File != notes[j].key.File {
				return notes[i].key.File < notes[j].key.File
			}
			return notes[i].key.Block < notes[j].key.Block
		})
		mgr := c.sys.managers[idx]
		_ = c.sys.eps[c.node].Send(p, netsim.NodeID(mgr.node), hEvictBatch,
			evictBatchArgs{notes: notes}, 32*len(notes))
		c.sys.stats.BatchedEvicts += int64(len(notes))
	}
	return nil
}

// ---- sequential-access detection and read-ahead ----

// noteSequential advances the per-client sequential detector after a
// single-block read and may launch a read-ahead.
func (c *Client) noteSequential(p *sim.Proc, f FileID, blk uint32) {
	switch {
	case f == c.seqFile && blk == c.seqNext:
		c.seqRun++
	case f == c.seqFile && blk+1 == c.seqNext:
		return // re-read of the current block; the run neither grows nor resets
	default:
		c.seqFile, c.seqRun = f, 1
	}
	c.seqNext = blk + 1
	c.maybePrefetch(p)
}

// noteSequentialRun is noteSequential for a vectored read.
func (c *Client) noteSequentialRun(p *sim.Proc, f FileID, blk uint32, count int) {
	if f == c.seqFile && blk == c.seqNext {
		c.seqRun += count
	} else {
		c.seqFile, c.seqRun = f, count
	}
	c.seqNext = blk + uint32(count)
	c.maybePrefetch(p)
}

// maybePrefetch launches one background read-ahead of the next
// Config.ReadAhead blocks once a sequential run is established. A
// single prefetch is in flight per client, so the pipeline stays
// bounded; the application's own reads overlap it.
func (c *Client) maybePrefetch(p *sim.Proc) {
	n := c.sys.cfg.ReadAhead
	if n <= 0 || c.seqRun < 2 || c.prefetching {
		return
	}
	f, start := c.seqFile, c.seqNext
	c.prefetching = true
	c.sys.eng.Spawn("xfs/readahead", func(pp *sim.Proc) {
		defer func() { c.prefetching = false }()
		_ = c.fetchRange(pp, f, start, n, true) // best-effort; a miss just reads on demand
	})
}
