package xfs

import (
	"bytes"
	"testing"

	"github.com/nowproject/now/internal/sim"
)

func buildFSWith(t *testing.T, cfg Config) (*sim.Engine, *System) {
	t.Helper()
	e := sim.NewEngine(1)
	sys, err := New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, sys
}

func TestReadAtMatchesSerialReads(t *testing.T) {
	const blocks = 12
	e, sys := buildFS(t, 6)
	drive(t, e, func(p *sim.Proc) {
		w := sys.Client(0)
		for i := uint32(0); i < blocks; i++ {
			if err := w.Write(p, 1, i, fill(1024, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Sync(p); err != nil {
			t.Fatal(err)
		}
		got, err := sys.Client(2).ReadAt(p, 1, 0, blocks)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < blocks; i++ {
			if !bytes.Equal(got[i*1024:(i+1)*1024], fill(1024, byte(i))) {
				t.Fatalf("block %d differs from serial contents", i)
			}
		}
	})
	st := sys.Stats()
	if st.RangeReads == 0 || st.BatchedTokens < blocks {
		t.Fatalf("range-token path unused: %+v", st)
	}
}

func TestReadAtUnwrittenBlocksAreZeros(t *testing.T) {
	e, sys := buildFS(t, 6)
	drive(t, e, func(p *sim.Proc) {
		got, err := sys.Client(0).ReadAt(p, 4, 2, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range got {
			if b != 0 {
				t.Fatal("fresh blocks not zero")
			}
		}
	})
}

func TestReadAtValidation(t *testing.T) {
	e, sys := buildFS(t, 6)
	drive(t, e, func(p *sim.Proc) {
		if _, err := sys.Client(0).ReadAt(p, 1, 0, 0); err == nil {
			t.Fatal("zero-count ReadAt accepted")
		}
	})
}

func TestWriteAtPeersReadBack(t *testing.T) {
	const blocks = 8
	e, sys := buildFS(t, 6)
	data := fill(blocks*1024, 5)
	drive(t, e, func(p *sim.Proc) {
		if err := sys.Client(0).WriteAt(p, 2, 0, data); err != nil {
			t.Fatal(err)
		}
		// Coherence must hold exactly as for serial writes: a peer sees
		// the dirty data block by block.
		for i := uint32(0); i < blocks; i++ {
			got, err := sys.Client(3).Read(p, 2, i)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data[i*1024:(i+1)*1024]) {
				t.Fatalf("block %d stale at peer", i)
			}
		}
	})
	st := sys.Stats()
	if st.RangeWrites == 0 {
		t.Fatalf("range write tokens unused: %+v", st)
	}
}

func TestWriteAtValidation(t *testing.T) {
	e, sys := buildFS(t, 6)
	drive(t, e, func(p *sim.Proc) {
		if err := sys.Client(0).WriteAt(p, 1, 0, make([]byte, 1500)); err == nil {
			t.Fatal("non-multiple WriteAt accepted")
		}
		if err := sys.Client(0).WriteAt(p, 1, 0, nil); err == nil {
			t.Fatal("empty WriteAt accepted")
		}
	})
}

func TestWriteAtOverwritesOwnedBlocks(t *testing.T) {
	e, sys := buildFS(t, 6)
	drive(t, e, func(p *sim.Proc) {
		c := sys.Client(0)
		if err := c.WriteAt(p, 1, 0, fill(4*1024, 1)); err != nil {
			t.Fatal(err)
		}
		want := fill(4*1024, 2)
		// Second WriteAt over owned blocks must not need new tokens.
		tok := sys.Stats().BatchedTokens
		if err := c.WriteAt(p, 1, 0, want); err != nil {
			t.Fatal(err)
		}
		if sys.Stats().BatchedTokens != tok {
			t.Fatalf("re-write of owned run requested tokens: %+v", sys.Stats())
		}
		got, err := c.ReadAt(p, 1, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("owned-run overwrite lost")
		}
	})
}

func TestReadAheadPrefetches(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.BlockBytes = 1024
	cfg.ClientCacheBlocks = 64
	cfg.ReadAhead = 4
	e, sys := buildFSWith(t, cfg)
	const blocks = 32
	drive(t, e, func(p *sim.Proc) {
		w := sys.Client(0)
		for i := uint32(0); i < blocks; i++ {
			if err := w.Write(p, 1, i, fill(1024, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Sync(p); err != nil {
			t.Fatal(err)
		}
		r := sys.Client(3)
		for i := uint32(0); i < blocks; i++ {
			got, err := r.Read(p, 1, i)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, fill(1024, byte(i))) {
				t.Fatalf("block %d wrong under read-ahead", i)
			}
		}
	})
	st := sys.Stats()
	if st.PrefetchIssued == 0 {
		t.Fatalf("sequential scan never prefetched: %+v", st)
	}
	if st.PrefetchHits == 0 {
		t.Fatalf("prefetched blocks never hit: %+v", st)
	}
}

func TestGroupCommitSync(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.BlockBytes = 1024
	cfg.ClientCacheBlocks = 64
	cfg.WriteBehind = true
	e, sys := buildFSWith(t, cfg)
	const blocks = 24
	drive(t, e, func(p *sim.Proc) {
		c := sys.Client(2)
		// Blocks of two files, so sync notes span both managers.
		for i := uint32(0); i < blocks; i++ {
			if err := c.Write(p, FileID(1+i%2), i/2, fill(1024, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Sync(p); err != nil {
			t.Fatal(err)
		}
		p.Sleep(50 * sim.Millisecond) // let batched sync notes land
		// Durability: crash the writer's cache contents by reading from a
		// cold client straight through the directory.
		for i := uint32(0); i < blocks; i++ {
			got, err := sys.Client(5).Read(p, FileID(1+i%2), i/2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, fill(1024, byte(i))) {
				t.Fatalf("block %d lost after group commit", i)
			}
		}
	})
	st := sys.Stats()
	if st.GroupCommits != 1 {
		t.Fatalf("GroupCommits = %d, want 1 (%+v)", st.GroupCommits, st)
	}
	if st.BatchedEvicts < blocks {
		t.Fatalf("sync notes not batched: %+v", st)
	}
	if st.StorageWrites < blocks {
		t.Fatalf("group commit skipped storage: %+v", st)
	}
}

func TestGroupCommitEmptyIsNoOp(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.BlockBytes = 1024
	cfg.WriteBehind = true
	e, sys := buildFSWith(t, cfg)
	drive(t, e, func(p *sim.Proc) {
		if err := sys.Client(0).Sync(p); err != nil {
			t.Fatal(err)
		}
	})
	if sys.Stats().GroupCommits != 0 {
		t.Fatalf("empty sync counted a commit: %+v", sys.Stats())
	}
}

// TestSeqScanPipelinedSpeedup is the acceptance gate for the pipelined
// data path: the same cold sequential scan must run at least twice as
// fast (in virtual time) through ReadAt + read-ahead + range tokens as
// through block-at-a-time Read on the serial protocol.
func TestSeqScanPipelinedSpeedup(t *testing.T) {
	const (
		nodes  = 8
		blocks = 64
		bb     = 4096
		window = 16
	)
	scan := func(cfg Config, vectored bool) sim.Duration {
		e := sim.NewEngine(1)
		sys, err := New(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var elapsed sim.Duration
		drive(t, e, func(p *sim.Proc) {
			w := sys.Client(0)
			for i := uint32(0); i < blocks; i++ {
				if err := w.Write(p, 1, i, fill(bb, byte(i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Sync(p); err != nil {
				t.Fatal(err)
			}
			r := sys.Client(3)
			t0 := p.Now()
			if vectored {
				for i := 0; i < blocks; i += window {
					got, err := r.ReadAt(p, 1, uint32(i), window)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got[:bb], fill(bb, byte(i))) {
						t.Fatalf("window at %d wrong", i)
					}
				}
			} else {
				for i := uint32(0); i < blocks; i++ {
					got, err := r.Read(p, 1, i)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, fill(bb, byte(i))) {
						t.Fatalf("block %d wrong", i)
					}
				}
			}
			elapsed = sim.Duration(p.Now() - t0)
		})
		e.Close()
		return elapsed
	}
	base := DefaultConfig(nodes)
	base.BlockBytes = bb
	base.ClientCacheBlocks = 8 // cold scan: the reader cannot hold the file
	serial := scan(base, false)

	pipe := PipelinedConfig(nodes)
	pipe.BlockBytes = bb
	pipe.ClientCacheBlocks = 2 * window
	pipelined := scan(pipe, true)

	if pipelined*2 > serial {
		t.Fatalf("pipelined scan not ≥2x: serial %v, pipelined %v", serial, pipelined)
	}
}
