package xfs

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/nowproject/now/internal/sim"
)

// TestRandomOpsMatchReferenceModel drives the file system from every
// client with random reads, writes and syncs, checking each read
// against an in-memory reference — first healthy, then after a storage
// crash, then after a manager failover. Coherence means a read always
// sees the latest write regardless of which client made it and where
// the block currently lives (owner cache, peer cache, or the RAID).
func TestRandomOpsMatchReferenceModel(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			e := sim.NewEngine(seed)
			cfg := DefaultConfig(9)
			cfg.SpareNodes = 1 // node 8 is the hot spare
			cfg.BlockBytes = 512
			cfg.ClientCacheBlocks = 8 // small: forces evictions and write-backs
			sys, err := New(e, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			type key struct {
				f   FileID
				blk uint32
			}
			ref := make(map[key][]byte)
			const files, blocks, ops = 3, 6, 250
			crashAt := ops / 3
			failoverAt := 2 * ops / 3
			drive(t, e, func(p *sim.Proc) {
				for op := 0; op < ops; op++ {
					if op == crashAt {
						// Crash a pure storage node, serve degraded for a
						// while, then rebuild onto the hot spare so the
						// later manager crash is again a single failure.
						sys.CrashStorage(7)
					}
					if op == crashAt+20 {
						if err := sys.RecoverStorage(p, 7, 8); err != nil {
							t.Fatalf("recover: %v", err)
						}
					}
					if op == failoverAt {
						p.Sleep(50 * sim.Millisecond) // let replication land
						sys.FailManager(p, 1)         // manager 1 lives on node 1
					}
					c := sys.Client(2 + rng.Intn(4)) // clients 2..5 stay alive
					k := key{f: FileID(rng.Intn(files)), blk: uint32(rng.Intn(blocks))}
					switch rng.Intn(5) {
					case 0, 1: // write
						data := make([]byte, cfg.BlockBytes)
						rng.Read(data)
						if err := c.Write(p, k.f, k.blk, data); err != nil {
							t.Fatalf("op %d write: %v", op, err)
						}
						ref[k] = append([]byte(nil), data...)
					case 4: // occasional sync
						if err := c.Sync(p); err != nil {
							t.Fatalf("op %d sync: %v", op, err)
						}
					default: // read
						got, err := c.Read(p, k.f, k.blk)
						if err != nil {
							t.Fatalf("op %d read %v: %v", op, k, err)
						}
						want, ok := ref[k]
						if !ok {
							want = make([]byte, cfg.BlockBytes)
						}
						if !bytes.Equal(got, want) {
							t.Fatalf("op %d: read %v diverged from reference", op, k)
						}
					}
				}
			})
		})
	}
}

// TestEveryClientSeesEveryWriter does an all-pairs coherence sweep:
// each client writes its own block, then every client reads every
// block — all served correctly through the ownership protocol.
func TestEveryClientSeesEveryWriter(t *testing.T) {
	e, sys := buildFS(t, 6)
	drive(t, e, func(p *sim.Proc) {
		for w := 0; w < 6; w++ {
			data := fill(1024, byte(w+1))
			if err := sys.Client(w).Write(p, 9, uint32(w), data); err != nil {
				t.Fatal(err)
			}
		}
		for r := 0; r < 6; r++ {
			for w := 0; w < 6; w++ {
				got, err := sys.Client(r).Read(p, 9, uint32(w))
				if err != nil {
					t.Fatalf("client %d reading block %d: %v", r, w, err)
				}
				if !bytes.Equal(got, fill(1024, byte(w+1))) {
					t.Fatalf("client %d saw stale block %d", r, w)
				}
			}
		}
	})
}

// TestWriteAfterManagerFailover exercises the ownership protocol
// end-to-end on the standby manager: invalidation, yields, write-backs.
func TestWriteAfterManagerFailover(t *testing.T) {
	e, sys := buildFS(t, 8)
	drive(t, e, func(p *sim.Proc) {
		if err := sys.Client(3).Write(p, 2, 0, fill(1024, 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Client(4).Read(p, 2, 0); err != nil {
			t.Fatal(err)
		}
		p.Sleep(50 * sim.Millisecond)
		sys.FailManager(p, 0)
		// New writer after failover must invalidate the old reader.
		if err := sys.Client(5).Write(p, 2, 0, fill(1024, 2)); err != nil {
			t.Fatal(err)
		}
		p.Sleep(50 * sim.Millisecond)
		got, err := sys.Client(4).Read(p, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fill(1024, 2)) {
			t.Fatal("reader saw stale data after post-failover write")
		}
	})
}
