// Package xfs implements xFS, the paper's serverless network file
// system: "client workstations cooperate in all aspects of the file
// system — storing data, managing metadata, and enforcing protection",
// with no central server anywhere.
//
// The four features the paper lists are all here:
//
//   - metadata and control migrate between clients: files hash to
//     manager nodes via the manager map, and when a manager crashes its
//     hot-standby replica takes over (any client can stand in for any
//     failed client);
//   - cache coherence is a multiprocessor-style write-back ownership
//     protocol: one owner may write a block; readers hold copies that
//     ownership changes invalidate; cache-to-cache transfers maximise
//     locality of data;
//   - file data lives in a software RAID (internal/swraid) striped
//     across every workstation's disk, so a storage node crash degrades
//     to parity reconstruction rather than data loss;
//   - client memories are cooperatively managed: a read miss is served
//     from another client's cache before anyone's disk.
//
// Block contents are real bytes end to end (through the RAID's XOR
// parity), so the tests verify coherence and recovery by value, not by
// counters alone.
//
// System.Instrument attaches an internal/obs registry: operation and
// coherence-traffic gauges plus an xfs.ownership.transfer span per
// write-ownership migration (docs/OBSERVABILITY.md).
package xfs

import (
	"fmt"

	"github.com/nowproject/now/internal/lru"
	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/swraid"
)

// AM handlers (xfs owns 0x90–0x9F).
const (
	hReadTok am.HandlerID = 0x90 + iota
	hWriteTok
	hFetchBlk
	hYield
	hInval
	hEvictNote
	hMetaRepl
	// Range-token and batch handlers: one round trip covers a contiguous
	// block run (the pipelined data path, DESIGN.md §9).
	hReadRangeTok
	hWriteRangeTok
	hEvictBatch
)

// FileID names a file; BlockNo a block within it.
type FileID uint32

// BlockKey identifies one file block.
type BlockKey struct {
	File  FileID
	Block uint32
}

// Config shapes the file system.
type Config struct {
	// Nodes is the number of participating workstations; every one runs
	// a client and a storage server, the first Managers also manage.
	Nodes int
	// SpareNodes at the end of the id range run storage servers but are
	// left out of the initial stripe group — hot spares for
	// RecoverStorage. Zero is fine; recovery then needs an external
	// replacement.
	SpareNodes int
	// Managers is the size of the manager set.
	Managers int
	// BlockBytes is the file block (and RAID chunk) size.
	BlockBytes int
	// ClientCacheBlocks bounds each client's block cache.
	ClientCacheBlocks int
	// RAIDLevel for the storage substrate.
	RAIDLevel swraid.Level
	// Fabric and Proto choose the communication substrate.
	Fabric func(nodes int) netsim.Config
	Proto  am.Config

	// ReadAhead enables the sequential-scan pipeline: when a client
	// detects a sequential access run, it prefetches the next ReadAhead
	// blocks concurrently (range token, overlapped peer-cache fetches
	// and stripe reads). Zero disables prefetching — the strictly
	// serial pre-pipeline behaviour.
	ReadAhead int
	// WriteBehind enables group commit: Sync flushes all dirty blocks
	// through one vectored RAID write and batches the per-manager evict
	// notes, instead of one blocking write per block.
	WriteBehind bool
}

// DefaultConfig returns a building-scale configuration: RAID-5 storage,
// lean messaging on a switched fabric.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:             nodes,
		Managers:          max(1, nodes/4),
		BlockBytes:        8192,
		ClientCacheBlocks: 256,
		RAIDLevel:         swraid.RAID5,
		Fabric:            netsim.ATM155,
		Proto:             am.DefaultConfig(),
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PipelinedConfig is DefaultConfig with the pipelined data path on:
// 8-block read-ahead and write-behind group commit. Sequential scans
// run at pipeline bandwidth instead of single-request latency.
func PipelinedConfig(nodes int) Config {
	cfg := DefaultConfig(nodes)
	cfg.ReadAhead = 8
	cfg.WriteBehind = true
	return cfg
}

// blockMeta is a manager's state for one block.
type blockMeta struct {
	addr    int64 // logical chunk index in the RAID
	owner   int   // node holding the dirty/writable copy, -1 if none
	readers map[int]struct{}
	written bool // block has ever been written to storage
}

func (bm *blockMeta) clone() *blockMeta {
	c := &blockMeta{addr: bm.addr, owner: bm.owner, written: bm.written,
		readers: make(map[int]struct{}, len(bm.readers))}
	for r := range bm.readers {
		c.readers[r] = struct{}{}
	}
	return c
}

// manager owns the metadata for the files that hash to it.
type manager struct {
	sys      *System
	idx      int // manager index (not node id)
	node     int // current hosting node
	standby  int // node holding this manager's metadata replica
	meta     map[BlockKey]*blockMeta
	nextAddr int64
}

// System is one xFS installation.
type System struct {
	cfg      Config
	eng      *sim.Engine
	fab      *netsim.Fabric
	eps      []*am.Endpoint
	stores   []*swraid.Store
	clients  []*Client
	managers []*manager
	// replicas[i] is the standby copy of manager i's metadata, hosted on
	// the standby node.
	replicas []map[BlockKey]*blockMeta
	// down marks crashed nodes: never chosen as a manager host or
	// standby again.
	down map[int]bool

	stats Stats
	obs   *obs.Registry // nil unless Instrument attached a registry
}

// Stats aggregates system activity.
type Stats struct {
	Reads          int64
	Writes         int64
	LocalHits      int64
	CacheTransfers int64 // served from a peer's cache
	StorageReads   int64
	StorageWrites  int64
	Invalidations  int64
	OwnerYields    int64
	Failovers      int64
	Handoffs       int64 // graceful manager moves (drain), no metadata loss

	// Pipelined data path (ReadAt/WriteAt, read-ahead, group commit).
	RangeReads     int64 // read-range token calls (one per ReadAt batch)
	RangeWrites    int64 // write-range token calls (one per WriteAt batch)
	BatchedTokens  int64 // tokens granted through range calls
	BatchedEvicts  int64 // evict/sync notes carried in batch messages
	GroupCommits   int64 // write-behind Sync flushes
	PrefetchIssued int64 // blocks fetched ahead of the reader
	PrefetchHits   int64 // prefetched blocks later read locally
	PrefetchWasted int64 // prefetched blocks evicted unread
}

// New builds the system on e.
func New(e *sim.Engine, cfg Config) (*System, error) {
	if cfg.Nodes < 3 {
		return nil, fmt.Errorf("xfs: need ≥3 nodes for RAID-5 storage, have %d", cfg.Nodes)
	}
	if cfg.Managers <= 0 || cfg.Managers > cfg.Nodes {
		return nil, fmt.Errorf("xfs: %d managers on %d nodes", cfg.Managers, cfg.Nodes)
	}
	if cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("xfs: block size %d", cfg.BlockBytes)
	}
	if cfg.Fabric == nil {
		cfg.Fabric = netsim.ATM155
	}
	fab, err := netsim.New(e, cfg.Fabric(cfg.Nodes))
	if err != nil {
		return nil, fmt.Errorf("xfs: %w", err)
	}
	if cfg.SpareNodes < 0 || cfg.Nodes-cfg.SpareNodes < 3 {
		return nil, fmt.Errorf("xfs: %d spares leaves too few stripe members", cfg.SpareNodes)
	}
	sys := &System{cfg: cfg, eng: e, fab: fab}
	stripeMembers := cfg.Nodes - cfg.SpareNodes
	storeIDs := make([]netsim.NodeID, 0, stripeMembers)
	for i := 0; i < cfg.Nodes; i++ {
		nd := node.New(e, node.DefaultConfig(netsim.NodeID(i)))
		ep := am.NewEndpoint(e, nd, fab, cfg.Proto)
		sys.eps = append(sys.eps, ep)
		sys.stores = append(sys.stores, swraid.NewStore(ep))
		if i < stripeMembers {
			storeIDs = append(storeIDs, ep.ID())
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		arr, err := swraid.NewArray(sys.eps[i], swraid.Config{
			Level:      cfg.RAIDLevel,
			ChunkBytes: cfg.BlockBytes,
			Stores:     append([]netsim.NodeID(nil), storeIDs...),
		})
		if err != nil {
			return nil, fmt.Errorf("xfs: %w", err)
		}
		c := &Client{
			sys:   sys,
			node:  i,
			array: arr,
			cache: lru.New[BlockKey, *cachedBlock](cfg.ClientCacheBlocks),
		}
		c.register()
		sys.clients = append(sys.clients, c)
	}
	sys.down = make(map[int]bool)
	sys.managers = make([]*manager, cfg.Managers)
	sys.replicas = make([]map[BlockKey]*blockMeta, cfg.Managers)
	for i := 0; i < cfg.Managers; i++ {
		sys.managers[i] = &manager{sys: sys, idx: i, node: i,
			standby: (i + 1) % cfg.Nodes, meta: make(map[BlockKey]*blockMeta)}
		sys.replicas[i] = make(map[BlockKey]*blockMeta)
	}
	sys.registerManagerHandlers()
	return sys, nil
}

// Client returns node i's client interface.
func (sys *System) Client(i int) *Client { return sys.clients[i] }

// Stats returns the accumulated counters.
func (sys *System) Stats() Stats { return sys.stats }

// Nodes returns the number of participating workstations.
func (sys *System) Nodes() int { return sys.cfg.Nodes }

// Fabric exposes the system's network. Standalone installations (no
// GLUnix cluster sharing the registry) instrument it for net.* metrics;
// the scenario runner also reads its Stats for run reports.
func (sys *System) Fabric() *netsim.Fabric { return sys.fab }

// Managers returns the size of the manager set.
func (sys *System) Managers() int { return len(sys.managers) }

// ManagerNode returns the node currently hosting manager idx (it moves
// on failover).
func (sys *System) ManagerNode(idx int) int {
	if idx < 0 || idx >= len(sys.managers) {
		return -1
	}
	return sys.managers[idx].node
}

// SpareNodeIDs lists the configured hot-spare nodes: storage servers
// outside the initial stripe group, available to RecoverStorage.
func (sys *System) SpareNodeIDs() []int {
	ids := make([]int, 0, sys.cfg.SpareNodes)
	for i := sys.cfg.Nodes - sys.cfg.SpareNodes; i < sys.cfg.Nodes; i++ {
		ids = append(ids, i)
	}
	return ids
}

// NodeDown reports whether node n has been removed from the
// installation (crashed, drained, or killed with its manager).
func (sys *System) NodeDown(n int) bool { return sys.down[n] }

// StripeMembers lists the nodes currently in the storage stripe, in
// layout order, as seen by a live client. After RecoverStorage the
// replaced member's slot names the spare that adopted its data.
func (sys *System) StripeMembers() []int {
	a := sys.viewArray()
	if a == nil {
		return nil
	}
	stores := a.Config().Stores
	out := make([]int, len(stores))
	for i, id := range stores {
		out[i] = int(id)
	}
	return out
}

// FailedStores lists stripe members currently marked failed — the
// degraded set a health check watches. Empty when the stripe is whole.
func (sys *System) FailedStores() []int {
	a := sys.viewArray()
	if a == nil {
		return nil
	}
	var out []int
	for _, id := range a.FailedStores() {
		out = append(out, int(id))
	}
	return out
}

// ManagersOn lists the manager indexes currently hosted on node n.
func (sys *System) ManagersOn(n int) []int {
	var out []int
	for _, m := range sys.managers {
		if m.node == n {
			out = append(out, m.idx)
		}
	}
	return out
}

// viewArray returns a live client's array — the authoritative view of
// the shared layout (all clients adopt the same one).
func (sys *System) viewArray() *swraid.Array {
	for _, c := range sys.clients {
		if !sys.down[c.node] {
			return c.array
		}
	}
	return nil
}

// HandoffManagers gracefully moves every manager hosted on node to its
// standby: unlike FailManager, the full metadata map travels with the
// role (no async-replica loss window) and nothing crashes. It is the
// manager half of a drain; the caller removes the node afterwards.
// Returns how many managers moved.
func (sys *System) HandoffManagers(node int) int {
	moved := 0
	for _, m := range sys.managers {
		if m.node != node {
			continue
		}
		sp := sys.obs.StartSpan("xfs.mgr.handoff", node)
		dest := m.standby
		if dest == node || sys.down[dest] {
			dest = sys.nextAlive(node, node)
		}
		m.node = dest
		m.standby = sys.nextAlive(dest, dest)
		// Graceful: m.meta moves with the role; the replica map restarts
		// empty on the new standby and re-fills as entries are written.
		sys.replicas[m.idx] = make(map[BlockKey]*blockMeta)
		sys.stats.Handoffs++
		if sp != 0 {
			sys.obs.Annotate(sp, fmt.Sprintf("manager %d → node %d", m.idx, dest))
		}
		sys.obs.EndSpan(sp)
		moved++
	}
	if moved > 0 {
		sys.registerManagerHandlers()
	}
	return moved
}

// DrainNode removes node from the installation gracefully: manager
// roles hand off to standbys first, then — if the node is an active
// stripe member — its data is reconstructed onto spare before the node
// detaches. spare is ignored when the node holds no stripe data; pass
// the next unconsumed hot spare (see faults.XFSTarget) otherwise.
// This is the storage half of a control-plane drain.
func (sys *System) DrainNode(p *sim.Proc, node, spare int) error {
	if node < 0 || node >= len(sys.eps) {
		return fmt.Errorf("xfs: drain node %d out of range", node)
	}
	if sys.down[node] {
		return fmt.Errorf("xfs: node %d already removed", node)
	}
	sys.HandoffManagers(node)
	inStripe := false
	for _, m := range sys.StripeMembers() {
		if m == node {
			inStripe = true
			break
		}
	}
	// Removing the node marks its store failed in every layout; for a
	// stripe member the rebuild below then reconstructs onto the spare.
	sys.CrashStorage(node)
	if !inStripe {
		return nil
	}
	if spare < 0 || spare >= len(sys.eps) {
		return fmt.Errorf("xfs: drain of stripe member %d needs a spare", node)
	}
	return sys.RecoverStorage(p, node, spare)
}

// managerOf maps a file to its manager index (the manager map).
func (sys *System) managerOf(f FileID) *manager {
	return sys.managers[int(f)%sys.cfg.Managers]
}

// standbyNode returns where manager m's replica lives. The standby is
// initially the next node after the manager's host and is re-pointed
// when either node crashes (see retargetStandbys).
func (sys *System) standbyNode(m *manager) int {
	return m.standby
}

// nextAlive returns the first node after n (cyclically) that is not
// down and not except — the standby/failover placement rule.
func (sys *System) nextAlive(n, except int) int {
	for i := 1; i <= sys.cfg.Nodes; i++ {
		c := (n + i) % sys.cfg.Nodes
		if !sys.down[c] && c != except {
			return c
		}
	}
	return n
}

// retargetStandbys gives every manager whose standby has crashed a new
// standby and re-registers the replication handlers. The replica map
// itself lives in sys.replicas (keyed by manager), so the re-point
// models the surviving manager re-seeding a new standby; the bulk
// metadata copy is not charged to the network — entries re-replicate
// incrementally as they are next written.
func (sys *System) retargetStandbys() {
	changed := false
	for _, m := range sys.managers {
		if sys.down[m.standby] {
			m.standby = sys.nextAlive(m.standby, m.node)
			changed = true
		}
	}
	if changed {
		sys.registerManagerHandlers()
	}
}

// maxLogicalChunk returns an upper bound on allocated storage addresses
// across all managers, for sizing a rebuild.
func (sys *System) maxLogicalChunk() int64 {
	var max int64
	for _, m := range sys.managers {
		if top := m.nextAddr*int64(sys.cfg.Managers) + int64(m.idx); top > max {
			max = top
		}
	}
	for i, rep := range sys.replicas {
		for _, bm := range rep {
			if bm.addr > max {
				max = bm.addr
			}
		}
		_ = i
	}
	return max
}

// RecoverStorage rebuilds the data a crashed store held onto spare
// (which must run a Store — the hot spares configured with SpareNodes
// do) and switches every client's array to the new layout — the paper's
// "if one workstation in the NOW crashes, any other can take its
// place". After recovery the array tolerates another single failure.
func (sys *System) RecoverStorage(p *sim.Proc, failed, spare int) error {
	if failed < 0 || failed >= len(sys.eps) || spare < 0 || spare >= len(sys.eps) {
		return fmt.Errorf("xfs: recover %d→%d out of range", failed, spare)
	}
	failedID := sys.eps[failed].ID()
	spareID := sys.eps[spare].ID()
	// One live client performs the reconstruction writes...
	var rebuilder *Client
	for _, c := range sys.clients {
		if c.node != failed && c.node != spare {
			rebuilder = c
			break
		}
	}
	if rebuilder == nil {
		return fmt.Errorf("xfs: no live client to rebuild")
	}
	d := int64(len(rebuilder.array.Config().Stores) - 1) // RAID-5 data per stripe
	if rebuilder.array.Config().Level != swraid.RAID5 {
		d = int64(len(rebuilder.array.Config().Stores))
	}
	stripes := sys.maxLogicalChunk()/d + 1
	if err := rebuilder.array.Rebuild(p, failedID, spareID, stripes); err != nil {
		return fmt.Errorf("xfs: rebuild: %w", err)
	}
	// ...and every other view adopts the new layout.
	for _, c := range sys.clients {
		if c == rebuilder {
			continue
		}
		if err := c.array.AdoptReplacement(failedID, spareID); err != nil {
			return fmt.Errorf("xfs: adopt: %w", err)
		}
	}
	return nil
}

// CrashStorage simulates the fail-stop crash of a (non-manager) node:
// its endpoint detaches and every client's RAID view marks its store
// failed, so subsequent reads reconstruct through redundancy. Managers
// whose standby lived on the node pick a new one, and the dead node is
// purged from block metadata (it holds no cached copies any more).
func (sys *System) CrashStorage(node int) {
	if node < 0 || node >= len(sys.eps) {
		return
	}
	sys.eps[node].Detach()
	for _, c := range sys.clients {
		c.array.MarkFailed(sys.eps[node].ID())
	}
	sys.down[node] = true
	sys.purgeFromMeta(node)
	sys.retargetStandbys()
}

// purgeFromMeta removes a dead node from every manager's block
// metadata: it can hold no tokens or cached copies.
func (sys *System) purgeFromMeta(dead int) {
	for _, m := range sys.managers {
		for _, bm := range m.meta {
			delete(bm.readers, dead)
			if bm.owner == dead {
				bm.owner = -1
			}
		}
	}
}

// FailManager simulates the crash of the node hosting manager idx and
// fails the manager over to its standby, which adopts the replica. The
// crashed node's endpoint detaches; its cached blocks are lost; the
// storage substrate serves its chunks through parity.
func (sys *System) FailManager(p *sim.Proc, idx int) {
	m := sys.managers[idx]
	dead := m.node
	sys.eps[dead].Detach()
	for _, c := range sys.clients {
		c.array.MarkFailed(sys.eps[dead].ID())
	}
	sys.down[dead] = true
	// The standby adopts the replica and becomes the manager, then
	// picks a fresh standby of its own.
	m.node = sys.standbyNode(m)
	m.standby = sys.nextAlive(m.node, m.node)
	m.meta = sys.replicas[idx]
	sys.replicas[idx] = make(map[BlockKey]*blockMeta)
	// The dead node can no longer hold tokens or copies, anywhere.
	sys.purgeFromMeta(dead)
	sys.stats.Failovers++
	// Other managers may have had their standby on the dead node too;
	// retargetStandbys re-registers all handlers.
	sys.retargetStandbys()
	sys.registerManagerHandlers()
}

// registerManagerHandlers (re)installs the manager RPC handlers on the
// nodes currently hosting each manager, and the replication sink on
// standbys.
func (sys *System) registerManagerHandlers() {
	for _, m := range sys.managers {
		m := m
		ep := sys.eps[m.node]
		ep.Register(hReadTok, func(p *sim.Proc, msg am.Msg) (any, int) {
			return sys.managerFor(msg).onReadTok(p, msg)
		})
		ep.Register(hWriteTok, func(p *sim.Proc, msg am.Msg) (any, int) {
			return sys.managerFor(msg).onWriteTok(p, msg)
		})
		ep.Register(hEvictNote, func(p *sim.Proc, msg am.Msg) (any, int) {
			return sys.managerFor(msg).onEvictNote(p, msg)
		})
		ep.Register(hReadRangeTok, func(p *sim.Proc, msg am.Msg) (any, int) {
			return sys.managerFor(msg).onReadRangeTok(p, msg)
		})
		ep.Register(hWriteRangeTok, func(p *sim.Proc, msg am.Msg) (any, int) {
			return sys.managerFor(msg).onWriteRangeTok(p, msg)
		})
		ep.Register(hEvictBatch, func(p *sim.Proc, msg am.Msg) (any, int) {
			return sys.managerFor(msg).onEvictBatch(p, msg)
		})
	}
	for i := range sys.managers {
		standby := sys.standbyNode(sys.managers[i])
		sys.eps[standby].Register(hMetaRepl, func(p *sim.Proc, msg am.Msg) (any, int) {
			upd, ok := msg.Arg.(replUpdate)
			if !ok {
				return nil, 0
			}
			sys.replicas[upd.manager][upd.key] = upd.meta
			return nil, 0
		})
	}
}

// managerFor finds the manager addressed by a token request (requests
// carry the file; several managers may share a hosting node).
func (sys *System) managerFor(msg am.Msg) *manager {
	switch a := msg.Arg.(type) {
	case tokArgs:
		return sys.managerOf(a.key.File)
	case evictArgs:
		return sys.managerOf(a.key.File)
	case rangeTokArgs:
		return sys.managerOf(a.file)
	case evictBatchArgs:
		if len(a.notes) > 0 {
			return sys.managerOf(a.notes[0].key.File)
		}
		return sys.managers[0]
	default:
		return sys.managers[0]
	}
}

type replUpdate struct {
	manager int
	key     BlockKey
	meta    *blockMeta
}

// replicate pushes one metadata entry to the standby (asynchronously —
// xFS trades a window of vulnerability for latency, like its log-based
// original; Sync publication points are the durable ones).
func (m *manager) replicate(p *sim.Proc, key BlockKey, bm *blockMeta) {
	standby := m.sys.standbyNode(m)
	m.sys.eps[m.node].SendAsync(p, netsim.NodeID(standby), hMetaRepl,
		replUpdate{manager: m.idx, key: key, meta: bm.clone()}, 64)
}
