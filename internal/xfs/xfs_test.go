package xfs

import (
	"bytes"
	"errors"
	"testing"

	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/swraid"
)

func buildFS(t *testing.T, nodes int) (*sim.Engine, *System) {
	t.Helper()
	e := sim.NewEngine(1)
	cfg := DefaultConfig(nodes)
	cfg.BlockBytes = 1024 // small blocks keep tests quick
	cfg.ClientCacheBlocks = 16
	sys, err := New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, sys
}

func drive(t *testing.T, e *sim.Engine, body func(p *sim.Proc)) {
	t.Helper()
	e.Spawn("driver", func(p *sim.Proc) {
		body(p)
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
}

func fill(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*11 + seed
	}
	return out
}

func TestReadUnwrittenBlockIsZeros(t *testing.T) {
	e, sys := buildFS(t, 6)
	drive(t, e, func(p *sim.Proc) {
		data, err := sys.Client(0).Read(p, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range data {
			if b != 0 {
				t.Fatal("fresh block not zero")
			}
		}
	})
}

func TestWriteReadBackSameClient(t *testing.T) {
	e, sys := buildFS(t, 6)
	want := fill(1024, 3)
	drive(t, e, func(p *sim.Proc) {
		if err := sys.Client(0).Write(p, 1, 0, want); err != nil {
			t.Fatal(err)
		}
		got, err := sys.Client(0).Read(p, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("read-back differs")
		}
	})
}

func TestReadYourPeersWrites(t *testing.T) {
	// Coherence: client 3 must see client 0's write even though it is
	// dirty in client 0's cache (owner downgrade + cache-to-cache).
	e, sys := buildFS(t, 6)
	want := fill(1024, 7)
	drive(t, e, func(p *sim.Proc) {
		if err := sys.Client(0).Write(p, 1, 0, want); err != nil {
			t.Fatal(err)
		}
		got, err := sys.Client(3).Read(p, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("peer read returned stale data")
		}
	})
	if sys.Stats().CacheTransfers == 0 {
		t.Fatalf("no cache-to-cache transfer: %+v", sys.Stats())
	}
}

func TestWriteInvalidatesReaders(t *testing.T) {
	e, sys := buildFS(t, 6)
	v1 := fill(1024, 1)
	v2 := fill(1024, 2)
	drive(t, e, func(p *sim.Proc) {
		if err := sys.Client(0).Write(p, 1, 0, v1); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Client(2).Read(p, 1, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Client(4).Read(p, 1, 0); err != nil {
			t.Fatal(err)
		}
		// A new writer invalidates both readers.
		if err := sys.Client(5).Write(p, 1, 0, v2); err != nil {
			t.Fatal(err)
		}
		p.Sleep(50 * sim.Millisecond) // let invalidations land
		got, err := sys.Client(2).Read(p, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, v2) {
			t.Fatal("reader saw stale data after invalidation")
		}
	})
	if sys.Stats().Invalidations == 0 {
		t.Fatalf("no invalidations recorded: %+v", sys.Stats())
	}
}

func TestOwnershipMigratesBetweenWriters(t *testing.T) {
	e, sys := buildFS(t, 6)
	drive(t, e, func(p *sim.Proc) {
		a := fill(1024, 1)
		if err := sys.Client(0).Write(p, 1, 0, a); err != nil {
			t.Fatal(err)
		}
		b := fill(1024, 2)
		if err := sys.Client(1).Write(p, 1, 0, b); err != nil {
			t.Fatal(err)
		}
		got, err := sys.Client(2).Read(p, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, b) {
			t.Fatal("second writer's data lost")
		}
	})
	if sys.Stats().OwnerYields == 0 {
		t.Fatalf("ownership never migrated: %+v", sys.Stats())
	}
}

func TestSyncPersistsToStorage(t *testing.T) {
	e, sys := buildFS(t, 6)
	want := fill(1024, 9)
	drive(t, e, func(p *sim.Proc) {
		if err := sys.Client(0).Write(p, 1, 0, want); err != nil {
			t.Fatal(err)
		}
		if err := sys.Client(0).Sync(p); err != nil {
			t.Fatal(err)
		}
	})
	if sys.Stats().StorageWrites == 0 {
		t.Fatalf("sync did not write storage: %+v", sys.Stats())
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	e, sys := buildFS(t, 6)
	drive(t, e, func(p *sim.Proc) {
		c := sys.Client(0)
		// Write more distinct blocks than the cache holds (16).
		for i := uint32(0); i < 24; i++ {
			if err := c.Write(p, 1, i, fill(1024, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		// Every block must still read back correctly from elsewhere.
		for i := uint32(0); i < 24; i++ {
			got, err := sys.Client(1).Read(p, 1, i)
			if err != nil {
				t.Fatalf("block %d: %v", i, err)
			}
			if !bytes.Equal(got, fill(1024, byte(i))) {
				t.Fatalf("block %d corrupted after eviction", i)
			}
		}
	})
	if sys.Stats().StorageWrites == 0 {
		t.Fatal("evictions never wrote storage")
	}
}

func TestStorageNodeCrashDegradedRead(t *testing.T) {
	e, sys := buildFS(t, 6)
	want := make([][]byte, 12)
	drive(t, e, func(p *sim.Proc) {
		c := sys.Client(0)
		for i := range want {
			want[i] = fill(1024, byte(i+40))
			if err := c.Write(p, 2, uint32(i), want[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Sync(p); err != nil {
			t.Fatal(err)
		}
		// Crash a pure storage node (not a manager: managers live on the
		// first Nodes/4 nodes; node 5 is safe here).
		sys.eps[5].Detach()
		for _, cl := range sys.clients {
			cl.Array().MarkFailed(sys.eps[5].ID())
		}
		// A cold client (whose cache has nothing) must still read
		// everything through parity.
		for i := range want {
			got, err := sys.Client(3).Read(p, 2, uint32(i))
			if err != nil {
				t.Fatalf("degraded read %d: %v", i, err)
			}
			if !bytes.Equal(got, want[i]) {
				t.Fatalf("degraded read %d returned wrong data", i)
			}
		}
	})
}

func TestManagerFailover(t *testing.T) {
	e, sys := buildFS(t, 8)
	// With 8 nodes there are 2 managers: files 0,2,… → manager 0 (node
	// 0); files 1,3,… → manager 1 (node 1).
	want := fill(1024, 5)
	drive(t, e, func(p *sim.Proc) {
		// File 2 is managed by manager 0 on node 0.
		if err := sys.Client(3).Write(p, 2, 0, want); err != nil {
			t.Fatal(err)
		}
		if err := sys.Client(3).Sync(p); err != nil {
			t.Fatal(err)
		}
		p.Sleep(100 * sim.Millisecond) // let metadata replication land
		sys.FailManager(p, 0)
		// Reads of manager-0 files must still work via the standby.
		got, err := sys.Client(4).Read(p, 2, 0)
		if err != nil {
			t.Fatalf("read after failover: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("failover returned wrong data")
		}
		// And writes too.
		v2 := fill(1024, 6)
		if err := sys.Client(5).Write(p, 2, 0, v2); err != nil {
			t.Fatalf("write after failover: %v", err)
		}
		got, err = sys.Client(6).Read(p, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, v2) {
			t.Fatal("post-failover write lost")
		}
	})
	if sys.Stats().Failovers != 1 {
		t.Fatalf("stats: %+v", sys.Stats())
	}
}

func TestCooperativeCachingServesFromPeer(t *testing.T) {
	e, sys := buildFS(t, 6)
	want := fill(1024, 8)
	drive(t, e, func(p *sim.Proc) {
		if err := sys.Client(0).Write(p, 3, 0, want); err != nil {
			t.Fatal(err)
		}
		if err := sys.Client(0).Sync(p); err != nil {
			t.Fatal(err)
		}
		before := sys.Stats().StorageReads
		// Client 1 reads (from client 0's cache), then client 2 reads —
		// also from a peer cache, never storage.
		if _, err := sys.Client(1).Read(p, 3, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Client(2).Read(p, 3, 0); err != nil {
			t.Fatal(err)
		}
		if sys.Stats().StorageReads != before {
			t.Fatalf("reads hit storage despite cached copies: %+v", sys.Stats())
		}
	})
	if sys.Stats().CacheTransfers < 2 {
		t.Fatalf("cache transfers = %d, want ≥2", sys.Stats().CacheTransfers)
	}
}

func TestLocalHitIsFast(t *testing.T) {
	e, sys := buildFS(t, 6)
	drive(t, e, func(p *sim.Proc) {
		c := sys.Client(0)
		if err := c.Write(p, 1, 0, fill(1024, 1)); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		if _, err := c.Read(p, 1, 0); err != nil {
			t.Fatal(err)
		}
		if d := p.Now() - start; d > sim.Millisecond {
			t.Fatalf("local hit took %v", d)
		}
	})
	if sys.Stats().LocalHits != 1 {
		t.Fatalf("stats: %+v", sys.Stats())
	}
}

func TestWriteSizeValidation(t *testing.T) {
	e, sys := buildFS(t, 6)
	drive(t, e, func(p *sim.Proc) {
		if err := sys.Client(0).Write(p, 1, 0, make([]byte, 99)); err == nil {
			t.Fatal("short write accepted")
		}
	})
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	if _, err := New(e, Config{Nodes: 2}); err == nil {
		t.Fatal("2 nodes accepted for RAID-5")
	}
	cfg := DefaultConfig(6)
	cfg.Managers = 0
	if _, err := New(e, cfg); err == nil {
		t.Fatal("0 managers accepted")
	}
	cfg = DefaultConfig(6)
	cfg.BlockBytes = 0
	if _, err := New(e, cfg); err == nil {
		t.Fatal("0 block size accepted")
	}
}

func TestRAID0ConfigWorksWithoutFailures(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(4)
	cfg.BlockBytes = 512
	cfg.RAIDLevel = swraid.RAID0
	sys, err := New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fill(512, 2)
	drive(t, e, func(p *sim.Proc) {
		if err := sys.Client(0).Write(p, 1, 0, want); err != nil {
			t.Fatal(err)
		}
		if err := sys.Client(0).Sync(p); err != nil {
			t.Fatal(err)
		}
		got, err := sys.Client(2).Read(p, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("RAID-0 round trip failed")
		}
	})
}
