// Package now is a Go reproduction of the Berkeley NOW project — "A
// Case for NOW (Networks of Workstations)" (Anderson, Culler, Patterson;
// IEEE Micro 15(1), 1995; abstract at PODC '95) — as a library a
// downstream user can assemble systems from.
//
// The paper argues that a building's workstations, joined by a switched
// low-overhead network, can replace the whole computing food chain. This
// module implements each piece the paper describes, on a deterministic
// discrete-event substrate (virtual time; real protocol code):
//
//   - sim: the simulation engine (virtual clock, processes, resources);
//   - netsim: Ethernet/ATM/FDDI/Myrinet-class fabric models;
//   - node: workstation CPU/DRAM/disk models;
//   - am + kstack: Active Messages and the kernel-stack baselines;
//   - glunix: the global-layer Unix (membership, idle detection,
//     remote execution, migration, coscheduling, failure recovery);
//   - netram: paging to idle remote memory;
//   - coopcache: cooperative file caching (N-chance forwarding);
//   - swraid: software RAID across workstation disks;
//   - xfs: the serverless network file system;
//   - sfi: software fault isolation;
//   - gator, costmodel, apps, trace, experiments: the paper's
//     evaluation — every table and figure regenerates (cmd/nowbench).
//
// This package is the front door: curated aliases and constructors so
// user code reads now.NewEngine, now.NewGLUnix, now.NewXFS without
// spelling internal import paths. Examples live in examples/; the
// benchmark harness regenerating the paper's results is bench_test.go
// and cmd/nowbench.
package now

import (
	"github.com/nowproject/now/internal/coopcache"
	"github.com/nowproject/now/internal/glunix"
	"github.com/nowproject/now/internal/netram"
	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/swraid"
	"github.com/nowproject/now/internal/xfs"
)

// ---- simulation substrate ----

// Engine is the deterministic discrete-event simulator every NOW system
// runs on.
type Engine = sim.Engine

// Proc is a simulated process.
type Proc = sim.Proc

// Time is a point in virtual time; Duration a span (nanoseconds).
type (
	Time     = sim.Time
	Duration = sim.Duration
)

// Virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// NewEngine creates a simulator seeded for reproducibility.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// ---- hardware ----

// FabricConfig describes a network; NodeConfig a workstation.
type (
	FabricConfig = netsim.Config
	Fabric       = netsim.Fabric
	NodeID       = netsim.NodeID
	NodeConfig   = node.Config
	Node         = node.Node
)

// Fabric presets from the paper's era.
var (
	Ethernet10 = netsim.Ethernet10
	ATM155     = netsim.ATM155
	FDDI100    = netsim.FDDI100
	Myrinet    = netsim.Myrinet
)

// NewFabric builds a network on e.
func NewFabric(e *Engine, cfg FabricConfig) (*Fabric, error) { return netsim.New(e, cfg) }

// DefaultNodeConfig is a mid-1994 workstation.
var DefaultNodeConfig = node.DefaultConfig

// NewNode builds a workstation on e.
func NewNode(e *Engine, cfg NodeConfig) *Node { return node.New(e, cfg) }

// ---- communication ----

// AMConfig configures an Active Messages endpoint; AMEndpoint is one
// node's attachment.
type (
	AMConfig   = am.Config
	AMEndpoint = am.Endpoint
	HandlerID  = am.HandlerID
	AMsg       = am.Msg
)

// AM cost presets.
var (
	DefaultAMConfig = am.DefaultConfig
	HPAMConfig      = am.HPAMConfig
	CM5AMConfig     = am.CM5Config
)

// NewAMEndpoint attaches a node to the fabric with Active Messages.
func NewAMEndpoint(e *Engine, n *Node, f *Fabric, cfg AMConfig) *AMEndpoint {
	return am.NewEndpoint(e, n, f, cfg)
}

// ---- the global layer ----

// GLUnix aliases.
type (
	GLUnixConfig  = glunix.Config
	GLUnix        = glunix.Cluster
	Job           = glunix.Job
	RecruitPolicy = glunix.RecruitPolicy
	Coscheduler   = glunix.Coscheduler
)

// Recruit policies.
const (
	MigrateOnReturn = glunix.MigrateOnReturn
	RestartOnReturn = glunix.RestartOnReturn
	IgnoreUser      = glunix.IgnoreUser
)

// DefaultGLUnixConfig sizes a building-scale installation.
var DefaultGLUnixConfig = glunix.DefaultConfig

// NewGLUnix builds the global layer over a fresh cluster of
// workstations.
func NewGLUnix(e *Engine, cfg GLUnixConfig) (*GLUnix, error) { return glunix.New(e, cfg) }

// NewJob describes a gang-scheduled parallel program.
var NewJob = glunix.NewJob

// ---- memory, caching, storage ----

// Network RAM aliases.
type (
	NetRAMRegistry = netram.Registry
	NetRAMServer   = netram.Server
	NetRAMPager    = netram.Pager
)

// Network RAM constructors.
var (
	NewNetRAMRegistry = netram.NewRegistry
	NewNetRAMServer   = netram.NewServer
	NewNetRAMPager    = netram.NewPager
)

// Cooperative caching aliases.
type (
	CoopCacheConfig = coopcache.Config
	CoopCache       = coopcache.System
	CachePolicy     = coopcache.Policy
)

// Cache policies.
const (
	ClientServer = coopcache.ClientServer
	Greedy       = coopcache.Greedy
	NChance      = coopcache.NChance
)

// Cooperative caching constructors.
var (
	DefaultCoopCacheConfig = coopcache.DefaultConfig
	NewCoopCache           = coopcache.New
)

// Software RAID aliases.
type (
	RAIDLevel  = swraid.Level
	RAIDConfig = swraid.Config
	RAIDArray  = swraid.Array
	RAIDStore  = swraid.Store
)

// RAID levels.
const (
	RAID0 = swraid.RAID0
	RAID1 = swraid.RAID1
	RAID5 = swraid.RAID5
)

// Software RAID constructors.
var (
	NewRAIDStore = swraid.NewStore
	NewRAIDArray = swraid.NewArray
)

// xFS aliases.
type (
	XFSConfig = xfs.Config
	XFS       = xfs.System
	FileID    = xfs.FileID
)

// xFS constructors.
var (
	DefaultXFSConfig = xfs.DefaultConfig
	NewXFS           = xfs.New
)
