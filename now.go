// Package now is a Go reproduction of the Berkeley NOW project — "A
// Case for NOW (Networks of Workstations)" (Anderson, Culler, Patterson;
// IEEE Micro 15(1), 1995; abstract at PODC '95) — as a library a
// downstream user can assemble systems from.
//
// The paper argues that a building's workstations, joined by a switched
// low-overhead network, can replace the whole computing food chain. This
// module implements each piece the paper describes, on a deterministic
// discrete-event substrate (virtual time; real protocol code):
//
//   - sim: the simulation engine (virtual clock, processes, resources);
//   - netsim: Ethernet/ATM/FDDI/Myrinet-class fabric models;
//   - node: workstation CPU/DRAM/disk models;
//   - am + kstack: Active Messages and the kernel-stack baselines;
//   - glunix: the global-layer Unix (membership, idle detection,
//     remote execution, migration, coscheduling, failure recovery);
//   - netram: paging to idle remote memory;
//   - coopcache: cooperative file caching (N-chance forwarding);
//   - swraid: software RAID across workstation disks;
//   - xfs: the serverless network file system;
//   - sfi: software fault isolation;
//   - federation: NOW of NOWs — clusters composed over a wide-area
//     fabric (lease-based cross-cluster caching, job spill-over);
//   - gator, costmodel, apps, trace, experiments: the paper's
//     evaluation — every table and figure regenerates (cmd/nowbench).
//
// This package is the front door: curated aliases and constructors so
// user code reads now.NewEngine, now.NewGLUnix, now.NewXFS without
// spelling internal import paths. The surface is split by concern:
//
//   - now_sim.go: the simulation substrate (engines, sharding, merge);
//   - now_net.go: fabrics, topologies, Active Messages, collectives;
//   - now_storage.go: network RAM, cooperative caching, RAID, xFS;
//   - now_ops.go: GLUnix, faults, scenarios, observability, the
//     control plane, and the workload studies;
//   - now_federation.go: the wide-area NOW-of-NOWs layer.
//
// Examples live in examples/; the benchmark harness regenerating the
// paper's results is bench_test.go and cmd/nowbench.
package now
