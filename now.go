// Package now is a Go reproduction of the Berkeley NOW project — "A
// Case for NOW (Networks of Workstations)" (Anderson, Culler, Patterson;
// IEEE Micro 15(1), 1995; abstract at PODC '95) — as a library a
// downstream user can assemble systems from.
//
// The paper argues that a building's workstations, joined by a switched
// low-overhead network, can replace the whole computing food chain. This
// module implements each piece the paper describes, on a deterministic
// discrete-event substrate (virtual time; real protocol code):
//
//   - sim: the simulation engine (virtual clock, processes, resources);
//   - netsim: Ethernet/ATM/FDDI/Myrinet-class fabric models;
//   - node: workstation CPU/DRAM/disk models;
//   - am + kstack: Active Messages and the kernel-stack baselines;
//   - glunix: the global-layer Unix (membership, idle detection,
//     remote execution, migration, coscheduling, failure recovery);
//   - netram: paging to idle remote memory;
//   - coopcache: cooperative file caching (N-chance forwarding);
//   - swraid: software RAID across workstation disks;
//   - xfs: the serverless network file system;
//   - sfi: software fault isolation;
//   - gator, costmodel, apps, trace, experiments: the paper's
//     evaluation — every table and figure regenerates (cmd/nowbench).
//
// This package is the front door: curated aliases and constructors so
// user code reads now.NewEngine, now.NewGLUnix, now.NewXFS without
// spelling internal import paths. Examples live in examples/; the
// benchmark harness regenerating the paper's results is bench_test.go
// and cmd/nowbench.
package now

import (
	"github.com/nowproject/now/internal/controlplane"
	"github.com/nowproject/now/internal/coopcache"
	"github.com/nowproject/now/internal/faults"
	"github.com/nowproject/now/internal/gator"
	"github.com/nowproject/now/internal/glunix"
	"github.com/nowproject/now/internal/netram"
	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/proto/collective"
	"github.com/nowproject/now/internal/scenario"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/swraid"
	"github.com/nowproject/now/internal/trace"
	"github.com/nowproject/now/internal/xfs"
)

// ---- simulation substrate ----

// Engine is the deterministic discrete-event simulator every NOW system
// runs on.
type Engine = sim.Engine

// Proc is a simulated process.
type Proc = sim.Proc

// Time is a point in virtual time; Duration a span (nanoseconds).
type (
	Time     = sim.Time
	Duration = sim.Duration
)

// Virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// NewEngine creates a simulator seeded for reproducibility.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// ErrStopped is the error Engine.Run returns after Engine.Stop — the
// normal way a driven simulation ends.
var ErrStopped = sim.ErrStopped

// WaitGroup joins concurrently spawned simulated processes.
type WaitGroup = sim.WaitGroup

// NewWaitGroup creates a WaitGroup on e; name labels it in traces.
func NewWaitGroup(e *Engine, name string) *WaitGroup { return sim.NewWaitGroup(e, name) }

// ---- sharded (multicore) execution ----

// ShardedConfig shapes a sharded engine: Parts logical partitions
// (workload identity — part of what a seed means), Workers goroutines
// executing them (never observable in results), the master Seed, and
// the conservative-lookahead Window (at least the minimum cross-
// partition link latency).
type (
	ShardedConfig = sim.ShardedConfig
	ShardedEngine = sim.ShardedEngine
	ShardMsg      = sim.ShardMsg
)

// NewShardedEngine builds Parts deterministic engines coordinated under
// the windowed conservative protocol of DESIGN.md §10.
func NewShardedEngine(cfg ShardedConfig) *ShardedEngine { return sim.NewShardedEngine(cfg) }

// Partitioned-fabric aliases: a PartitionMap assigns nodes to
// partitions; a ShardedFabric is one fabric split into per-partition
// instances with deterministic cross-partition packet handoff.
type (
	PartitionMap  = netsim.PartitionMap
	ShardedFabric = netsim.ShardedFabric
)

// SplitEven maps nodes onto parts partitions in contiguous equal runs.
var SplitEven = netsim.SplitEven

// NewShardedFabric splits cfg across the partitions of pm on se.
func NewShardedFabric(se *ShardedEngine, cfg FabricConfig, pm PartitionMap) (*ShardedFabric, error) {
	return netsim.NewSharded(se, cfg, pm)
}

// NewCommPart builds one partition's fragment of a cluster-wide
// collective communicator: eps holds endpoints only at locally-owned
// ranks (nil elsewhere), nodeOf maps every rank to its node.
var NewCommPart = collective.NewPart

// MergeRegistries combines per-partition metrics registries into one
// stable-ordered registry (counters sum, ".max" gauges and the clock
// take maxima, spans interleave by start time).
var MergeRegistries = obs.Merged

// ---- hardware ----

// FabricConfig describes a network; NodeConfig a workstation.
type (
	FabricConfig = netsim.Config
	Fabric       = netsim.Fabric
	NodeID       = netsim.NodeID
	NodeConfig   = node.Config
	Node         = node.Node
)

// Fabric presets from the paper's era.
var (
	Ethernet10 = netsim.Ethernet10
	ATM155     = netsim.ATM155
	FDDI100    = netsim.FDDI100
	Myrinet    = netsim.Myrinet
)

// Topology plugs a switch structure (fat-tree, torus) into a switched
// fabric via FabricConfig.Topo; CombineTree is the switch hierarchy
// the in-network collective plane combines over.
type (
	Topology    = netsim.Topology
	CombineTree = netsim.CombineTree
)

// Topology constructors. TopoByName resolves the scenario/CLI names
// ("crossbar", "fattree", "torus"); "crossbar" is the flat default and
// returns a nil Topology.
var (
	NewFatTree    = netsim.NewFatTree
	NewTorus      = netsim.NewTorus
	TopoByName    = netsim.TopoByName
	CombineTreeOf = netsim.CombineTreeOf
)

// NewFabric builds a network on e.
func NewFabric(e *Engine, cfg FabricConfig) (*Fabric, error) { return netsim.New(e, cfg) }

// DefaultNodeConfig is a mid-1994 workstation.
var DefaultNodeConfig = node.DefaultConfig

// NewNode builds a workstation on e.
func NewNode(e *Engine, cfg NodeConfig) *Node { return node.New(e, cfg) }

// ---- communication ----

// AMConfig configures an Active Messages endpoint; AMEndpoint is one
// node's attachment.
type (
	AMConfig   = am.Config
	AMEndpoint = am.Endpoint
	HandlerID  = am.HandlerID
	AMsg       = am.Msg
)

// AM cost presets.
var (
	DefaultAMConfig = am.DefaultConfig
	HPAMConfig      = am.HPAMConfig
	CM5AMConfig     = am.CM5Config
)

// NewAMEndpoint attaches a node to the fabric with Active Messages.
func NewAMEndpoint(e *Engine, n *Node, f *Fabric, cfg AMConfig) *AMEndpoint {
	return am.NewEndpoint(e, n, f, cfg)
}

// ---- the global layer ----

// GLUnix aliases.
type (
	GLUnixConfig  = glunix.Config
	GLUnix        = glunix.Cluster
	Job           = glunix.Job
	RecruitPolicy = glunix.RecruitPolicy
	Coscheduler   = glunix.Coscheduler
)

// Recruit policies.
const (
	MigrateOnReturn = glunix.MigrateOnReturn
	RestartOnReturn = glunix.RestartOnReturn
	IgnoreUser      = glunix.IgnoreUser
)

// DefaultGLUnixConfig sizes a building-scale installation.
var DefaultGLUnixConfig = glunix.DefaultConfig

// NewGLUnix builds the global layer over a fresh cluster of
// workstations.
func NewGLUnix(e *Engine, cfg GLUnixConfig) (*GLUnix, error) { return glunix.New(e, cfg) }

// NewJob describes a gang-scheduled parallel program.
var NewJob = glunix.NewJob

// ---- memory, caching, storage ----

// Network RAM aliases.
type (
	NetRAMRegistry = netram.Registry
	NetRAMServer   = netram.Server
	NetRAMPager    = netram.Pager
)

// Network RAM constructors.
var (
	NewNetRAMRegistry = netram.NewRegistry
	NewNetRAMServer   = netram.NewServer
	NewNetRAMPager    = netram.NewPager
)

// Cooperative caching aliases.
type (
	CoopCacheConfig = coopcache.Config
	CoopCache       = coopcache.System
	CachePolicy     = coopcache.Policy
)

// Cache policies.
const (
	ClientServer = coopcache.ClientServer
	Greedy       = coopcache.Greedy
	NChance      = coopcache.NChance
)

// Cooperative caching constructors.
var (
	DefaultCoopCacheConfig = coopcache.DefaultConfig
	NewCoopCache           = coopcache.New
)

// Software RAID aliases.
type (
	RAIDLevel  = swraid.Level
	RAIDConfig = swraid.Config
	RAIDArray  = swraid.Array
	RAIDStore  = swraid.Store
)

// RAID levels.
const (
	RAID0 = swraid.RAID0
	RAID1 = swraid.RAID1
	RAID5 = swraid.RAID5
)

// Software RAID constructors.
var (
	NewRAIDStore = swraid.NewStore
	NewRAIDArray = swraid.NewArray
)

// xFS aliases.
type (
	XFSConfig = xfs.Config
	XFS       = xfs.System
	FileID    = xfs.FileID
)

// xFS constructors. PipelinedXFSConfig turns on the batched data path
// (range tokens, read-ahead, write-behind group commit — DESIGN.md §9).
var (
	DefaultXFSConfig   = xfs.DefaultConfig
	PipelinedXFSConfig = xfs.PipelinedConfig
	NewXFS             = xfs.New
)

// ---- collective operations ----

// Comm is a collective communicator over a set of AM endpoints;
// CollectiveConfig shapes its trees.
type (
	Comm             = collective.Comm
	CollectiveConfig = collective.Config
)

// Collective constructors.
var (
	DefaultCollectiveConfig = collective.DefaultConfig
	NewComm                 = collective.New
)

// InNet executes barrier/broadcast/reduce inside the fabric's switches
// (SHARP-style combining over the topology's CombineTree) instead of a
// software tree of endpoint messages.
type (
	InNet       = collective.InNet
	InNetConfig = collective.InNetConfig
)

// NewInNet builds the in-network collective plane over c's fabric.
var NewInNet = collective.NewInNet

// Barrier blocks rank until every rank of c has arrived.
func Barrier(p *Proc, c *Comm, rank int) error { return c.Barrier(p, rank) }

// AllToAll performs a personalized all-to-all exchange of
// blockBytes-sized blocks; every rank must call it.
func AllToAll(p *Proc, c *Comm, rank, blockBytes int) error {
	return c.AllToAll(p, rank, blockBytes)
}

// ---- fault injection ----

// Fault aliases: a FaultPlan schedules Faults, a FaultInjector applies
// them to a FaultTarget (adapters onto live subsystems).
type (
	Fault              = faults.Fault
	FaultKind          = faults.Kind
	FaultPlan          = faults.Plan
	FaultInjector      = faults.Injector
	FaultTarget        = faults.Target
	BaseFaultTarget    = faults.BaseTarget
	ClusterFaultTarget = faults.ClusterTarget
	XFSFaultTarget     = faults.XFSTarget
)

// Fault kinds.
const (
	FaultCrash     = faults.Crash
	FaultRecover   = faults.Recover
	FaultPartition = faults.Partition
	FaultHeal      = faults.Heal
	FaultLink      = faults.Link
	FaultLinkClear = faults.LinkClear
	FaultDiskFail  = faults.DiskFail
	FaultRebuild   = faults.Rebuild
	FaultMgrKill   = faults.MgrKill
)

// Fault-injection constructors. ScriptedFaultPlan builds a plan in
// code; ParseFaultPlan reads the plan syntax of docs/FAULTS.md from a
// reader; ParseFaultSpec resolves a CLI spec ("seed:<n>[,k=v...]" or a
// plan-file path).
var (
	NewInjector         = faults.NewInjector
	ScriptedFaultPlan   = faults.Scripted
	ParseFaultPlan      = faults.Parse
	ParseFaultSpec      = faults.ParseSpec
	GenerateFaultPlan   = faults.Generate
	NewXFSFaultTarget   = faults.NewXFSTarget
	CombineFaultTargets = faults.Combine
)

// ---- declarative scenarios ----

// Scenario aliases: a Scenario is one parsed .scn file (fleet + event
// script + assertions — docs/SCENARIOS.md); ScenarioResult is one run's
// checks, summaries and metrics registry; ScenarioOptions holds
// execution-only knobs (never part of a deterministic output).
type (
	Scenario        = scenario.Scenario
	ScenarioResult  = scenario.Result
	ScenarioCheck   = scenario.Check
	ScenarioOptions = scenario.Options
	ScenarioProblem = scenario.Problem
)

// Scenario constructors. ParseScenario reads the DSL from a reader;
// ParseScenarioFile also anchors fault-plan references to the file's
// directory; ParseScenarioFileAll collects EVERY parse/validation
// problem instead of stopping at the first (the `nowsim check` form);
// RunScenario executes one and evaluates its assertions (assertion
// failures are data — ScenarioResult.Ok — not errors).
var (
	ParseScenario        = scenario.Parse
	ParseScenarioFile    = scenario.ParseFile
	ParseScenarioFileAll = scenario.ParseFileAll
	RunScenario          = scenario.Run
)

// ---- observability ----

// MetricsRegistry collects counters, gauges, and spans from
// instrumented subsystems; Metric is one exported sample.
type (
	MetricsRegistry = obs.Registry
	Metric          = obs.Metric
)

// NewRegistry creates an empty metrics registry; attach it to an
// engine with Engine.Observe and to subsystems with InstrumentAll.
var NewRegistry = obs.NewRegistry

// Instrumentable is anything that can mirror its internals into a
// metrics registry. Every NOW subsystem satisfies it: the Engine,
// Fabric, GLUnix, Coscheduler, NetRAMPager, CoopCache, RAIDArray, XFS,
// and Comm all carry an Instrument method.
type Instrumentable interface {
	Instrument(r *MetricsRegistry)
}

// InstrumentAll attaches every subsystem to one registry — the
// one-call way to wire a whole assembled system for metrics export.
// Nil subsystems are skipped, so optional pieces compose freely.
func InstrumentAll(r *MetricsRegistry, subsystems ...Instrumentable) {
	for _, s := range subsystems {
		if s != nil {
			s.Instrument(r)
		}
	}
}

// ---- traces and mixed workloads ----

// Trace aliases: recorded user activity and parallel-job logs drive
// the mixed-workload studies.
type (
	ActivityTrace = trace.ActivityTrace
	ParallelJob   = trace.ParallelJob
)

// GLUnixMixedResult reports a mixed interactive-plus-parallel run.
type GLUnixMixedResult = glunix.MixedResult

// RunGLUnixMixed overlays a parallel-job log on a cluster receiving an
// interactive activity trace. The wire hook (when non-nil) runs on the
// built cluster before the simulation starts — the place to attach a
// fault injector or extra workloads.
var RunGLUnixMixed = glunix.RunMixedWith

// ---- control plane (operate the cluster) ----

// Control-plane aliases: a ControlPlane is the in-process operator API
// over a live cluster (census, cordon/uncordon, drain, live fault
// injection, metric/span streaming); a Remediator closes the
// self-healing loop; a ControlPlaneServer maps virtual time onto the
// wall clock and serves the HTTP/JSON operator API; a
// ControlPlaneClient is its typed client (what nowctl speaks). See
// docs/CONTROLPLANE.md.
type (
	ControlPlane             = controlplane.ControlPlane
	ControlPlaneConfig       = controlplane.Config
	ControlPlaneServer       = controlplane.Server
	ControlPlaneServerConfig = controlplane.ServerConfig
	ControlPlaneClient       = controlplane.Client
	ControlPlaneStack        = controlplane.Stack
	ControlPlaneStackConfig  = controlplane.StackConfig
	Remediator               = controlplane.Remediator
	RemediationPolicy        = controlplane.RemediationPolicy
	WorkstationStatus        = controlplane.NodeStatus
	StoreStatus              = controlplane.StoreStatus
	NOWClusterStatus         = controlplane.ClusterStatus
)

// Control-plane constructors.
var (
	NewControlPlane          = controlplane.New
	NewControlPlaneServer    = controlplane.NewServer
	NewControlPlaneStack     = controlplane.NewStack
	NewRemediator            = controlplane.NewRemediator
	DefaultRemediationPolicy = controlplane.DefaultRemediationPolicy
)

// ---- network RAM multigrid workload ----

// Multigrid aliases: the paper's out-of-core scientific workload
// paging to remote memory.
type (
	MultigridConfig = netram.MultigridConfig
	MultigridResult = netram.MultigridResult
)

// Multigrid constructors.
var (
	DefaultMultigridConfig = netram.DefaultMultigridConfig
	RunMultigrid           = netram.RunMultigrid
)

// ---- GATOR (global-atmosphere model) ----

// GATOR aliases: the paper's end-to-end application study.
type (
	GatorMiniConfig = gator.MiniConfig
	GatorMiniResult = gator.MiniResult
	GatorPhaseTimes = gator.PhaseTimes
)

// GATOR constructors and the paper's Table 4 reference times.
var (
	DefaultGatorMiniConfig = gator.DefaultMiniConfig
	RunGatorMini           = gator.RunMini
	GatorTable4            = gator.Table4
)
