// The wide-area layer: NOW of NOWs. A Federation composes several
// cluster stacks — each its own GLUnix census, xFS, and fabric — over a
// WAN fabric with millisecond latencies and thin, possibly asymmetric
// pipes, on one deterministic sharded engine (one partition per
// cluster). On top ride the hierarchical file tier (home-cluster
// managers authoritative, lease-based cross-cluster caching with
// recall-before-conflicting-write) and GLUnix job spill-over with
// migration-cost-aware placement. See docs/FEDERATION.md and
// DESIGN.md §14.
package now

import (
	"github.com/nowproject/now/internal/federation"
	"github.com/nowproject/now/internal/netsim"
)

// Federation aliases. A FederationConfig lists the member clusters and
// the WAN between them; FederationCluster sizes one member (its GLUnix
// workstations and/or xFS storage nodes); WANConfig and WANLink shape
// the wide-area pipes (directed per-pair overrides included);
// FederatedXFSConfig tunes the cross-cluster file tier; SpillConfig
// and SpillPolicy govern job spill-over; FedJobSpec describes a job
// submitted through the federation's placement path.
type (
	Federation         = federation.Federation
	FederationConfig   = federation.Config
	FederationCluster  = federation.ClusterConfig
	FederationMember   = federation.Cluster
	WANConfig          = federation.WANConfig
	WANLink            = federation.Link
	FederatedXFSConfig = federation.FSConfig
	FederatedFS        = federation.FedFS
	SpillPolicy        = federation.SpillPolicy
	SpillConfig        = federation.SpillConfig
	FedJobSpec         = federation.JobSpec
)

// Spill-over placement policies.
const (
	SpillOff       = federation.SpillOff
	SpillWhenIdle  = federation.SpillWhenIdle
	SpillCostAware = federation.SpillCostAware
)

// DefaultWANConfig is a mid-90s campus backbone: 5 ms one-way, 45 Mb/s
// (a T3), lossless.
var DefaultWANConfig = federation.DefaultWANConfig

// NewFederation builds the member clusters on one sharded engine and
// wires the WAN, the federated file tier, and the spill-over layer.
func NewFederation(cfg FederationConfig) (*Federation, error) { return federation.New(cfg) }

// ErrUnsupportedSharding is the sentinel wrapped by configurations the
// deterministic sharded substrate cannot honor — shared-medium fabrics
// or switch topologies under NewShardedFabric, and zero-latency WAN
// links under NewFederation (the conservative window needs a positive
// minimum link latency). Branch with errors.Is.
var ErrUnsupportedSharding = netsim.ErrUnsupportedSharding
