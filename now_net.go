// The network layer: fabrics and their presets, pluggable switch
// topologies, workstation nodes, Active Messages, and the collective
// operations (software trees and in-network combining).
package now

import (
	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/proto/collective"
)

// FabricConfig describes a network; NodeConfig a workstation.
type (
	FabricConfig = netsim.Config
	Fabric       = netsim.Fabric
	NodeID       = netsim.NodeID
	NodeConfig   = node.Config
	Node         = node.Node
)

// Fabric presets from the paper's era.
var (
	Ethernet10 = netsim.Ethernet10
	ATM155     = netsim.ATM155
	FDDI100    = netsim.FDDI100
	Myrinet    = netsim.Myrinet
)

// Topology plugs a switch structure (fat-tree, torus) into a switched
// fabric via FabricConfig.Topo; CombineTree is the switch hierarchy
// the in-network collective plane combines over.
type (
	Topology    = netsim.Topology
	CombineTree = netsim.CombineTree
)

// Topology constructors. TopoByName resolves the scenario/CLI names
// ("crossbar", "fattree", "torus"); "crossbar" is the flat default and
// returns a nil Topology.
var (
	NewFatTree    = netsim.NewFatTree
	NewTorus      = netsim.NewTorus
	TopoByName    = netsim.TopoByName
	CombineTreeOf = netsim.CombineTreeOf
)

// NewFabric builds a network on e.
func NewFabric(e *Engine, cfg FabricConfig) (*Fabric, error) { return netsim.New(e, cfg) }

// DefaultNodeConfig is a mid-1994 workstation.
var DefaultNodeConfig = node.DefaultConfig

// NewNode builds a workstation on e.
func NewNode(e *Engine, cfg NodeConfig) *Node { return node.New(e, cfg) }

// ---- communication ----

// AMConfig configures an Active Messages endpoint; AMEndpoint is one
// node's attachment.
type (
	AMConfig   = am.Config
	AMEndpoint = am.Endpoint
	HandlerID  = am.HandlerID
	AMsg       = am.Msg
)

// AM cost presets.
var (
	DefaultAMConfig = am.DefaultConfig
	HPAMConfig      = am.HPAMConfig
	CM5AMConfig     = am.CM5Config
)

// NewAMEndpoint attaches a node to the fabric with Active Messages.
func NewAMEndpoint(e *Engine, n *Node, f *Fabric, cfg AMConfig) *AMEndpoint {
	return am.NewEndpoint(e, n, f, cfg)
}

// ---- collective operations ----

// Comm is a collective communicator over a set of AM endpoints;
// CollectiveConfig shapes its trees.
type (
	Comm             = collective.Comm
	CollectiveConfig = collective.Config
)

// Collective constructors.
var (
	DefaultCollectiveConfig = collective.DefaultConfig
	NewComm                 = collective.New
)

// InNet executes barrier/broadcast/reduce inside the fabric's switches
// (SHARP-style combining over the topology's CombineTree) instead of a
// software tree of endpoint messages.
type (
	InNet       = collective.InNet
	InNetConfig = collective.InNetConfig
)

// NewInNet builds the in-network collective plane over c's fabric.
var NewInNet = collective.NewInNet

// Barrier blocks rank until every rank of c has arrived.
func Barrier(p *Proc, c *Comm, rank int) error { return c.Barrier(p, rank) }

// AllToAll performs a personalized all-to-all exchange of
// blockBytes-sized blocks; every rank must call it.
func AllToAll(p *Proc, c *Comm, rank, blockBytes int) error {
	return c.AllToAll(p, rank, blockBytes)
}
