// Operating the cluster: the GLUnix global layer, fault injection,
// declarative scenarios, observability, the control plane, and the
// paper's workload studies (traces, multigrid, GATOR).
package now

import (
	"github.com/nowproject/now/internal/controlplane"
	"github.com/nowproject/now/internal/faults"
	"github.com/nowproject/now/internal/gator"
	"github.com/nowproject/now/internal/glunix"
	"github.com/nowproject/now/internal/netram"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/scenario"
	"github.com/nowproject/now/internal/trace"
)

// ---- the global layer ----

// GLUnix aliases.
type (
	GLUnixConfig  = glunix.Config
	GLUnix        = glunix.Cluster
	Job           = glunix.Job
	RecruitPolicy = glunix.RecruitPolicy
	Coscheduler   = glunix.Coscheduler
)

// Recruit policies.
const (
	MigrateOnReturn = glunix.MigrateOnReturn
	RestartOnReturn = glunix.RestartOnReturn
	IgnoreUser      = glunix.IgnoreUser
)

// DefaultGLUnixConfig sizes a building-scale installation.
var DefaultGLUnixConfig = glunix.DefaultConfig

// NewGLUnix builds the global layer over a fresh cluster of
// workstations.
func NewGLUnix(e *Engine, cfg GLUnixConfig) (*GLUnix, error) { return glunix.New(e, cfg) }

// NewJob describes a gang-scheduled parallel program.
var NewJob = glunix.NewJob

// ---- fault injection ----

// Fault aliases: a FaultPlan schedules Faults, a FaultInjector applies
// them to a FaultTarget (adapters onto live subsystems).
type (
	Fault              = faults.Fault
	FaultKind          = faults.Kind
	FaultPlan          = faults.Plan
	FaultInjector      = faults.Injector
	FaultTarget        = faults.Target
	BaseFaultTarget    = faults.BaseTarget
	ClusterFaultTarget = faults.ClusterTarget
	XFSFaultTarget     = faults.XFSTarget
)

// Fault kinds.
const (
	FaultCrash     = faults.Crash
	FaultRecover   = faults.Recover
	FaultPartition = faults.Partition
	FaultHeal      = faults.Heal
	FaultLink      = faults.Link
	FaultLinkClear = faults.LinkClear
	FaultDiskFail  = faults.DiskFail
	FaultRebuild   = faults.Rebuild
	FaultMgrKill   = faults.MgrKill
)

// Fault-injection constructors. ScriptedFaultPlan builds a plan in
// code; ParseFaultPlan reads the plan syntax of docs/FAULTS.md from a
// reader; ParseFaultSpec resolves a CLI spec ("seed:<n>[,k=v...]" or a
// plan-file path).
var (
	NewInjector         = faults.NewInjector
	ScriptedFaultPlan   = faults.Scripted
	ParseFaultPlan      = faults.Parse
	ParseFaultSpec      = faults.ParseSpec
	GenerateFaultPlan   = faults.Generate
	NewXFSFaultTarget   = faults.NewXFSTarget
	CombineFaultTargets = faults.Combine
)

// ---- declarative scenarios ----

// Scenario aliases: a Scenario is one parsed .scn file (fleet + event
// script + assertions — docs/SCENARIOS.md); ScenarioResult is one run's
// checks, summaries and metrics registry; ScenarioOptions holds
// execution-only knobs (never part of a deterministic output).
type (
	Scenario        = scenario.Scenario
	ScenarioResult  = scenario.Result
	ScenarioCheck   = scenario.Check
	ScenarioOptions = scenario.Options
	ScenarioProblem = scenario.Problem
)

// Scenario constructors. ParseScenario reads the DSL from a reader;
// ParseScenarioFile also anchors fault-plan references to the file's
// directory; ParseScenarioFileAll collects EVERY parse/validation
// problem instead of stopping at the first (the `nowsim check` form);
// RunScenario executes one and evaluates its assertions (assertion
// failures are data — ScenarioResult.Ok — not errors).
var (
	ParseScenario        = scenario.Parse
	ParseScenarioFile    = scenario.ParseFile
	ParseScenarioFileAll = scenario.ParseFileAll
	RunScenario          = scenario.Run
)

// ---- observability ----

// MetricsRegistry collects counters, gauges, and spans from
// instrumented subsystems; Metric is one exported sample.
type (
	MetricsRegistry = obs.Registry
	Metric          = obs.Metric
)

// NewRegistry creates an empty metrics registry; attach it to an
// engine with Engine.Observe and to subsystems with InstrumentAll.
var NewRegistry = obs.NewRegistry

// Instrumentable is anything that can mirror its internals into a
// metrics registry. Every NOW subsystem satisfies it: the Engine,
// Fabric, GLUnix, Coscheduler, NetRAMPager, CoopCache, RAIDArray, XFS,
// and Comm all carry an Instrument method.
type Instrumentable interface {
	Instrument(r *MetricsRegistry)
}

// InstrumentAll attaches every subsystem to one registry — the
// one-call way to wire a whole assembled system for metrics export.
// Nil subsystems are skipped, so optional pieces compose freely.
func InstrumentAll(r *MetricsRegistry, subsystems ...Instrumentable) {
	for _, s := range subsystems {
		if s != nil {
			s.Instrument(r)
		}
	}
}

// ---- traces and mixed workloads ----

// Trace aliases: recorded user activity and parallel-job logs drive
// the mixed-workload studies.
type (
	ActivityTrace = trace.ActivityTrace
	ParallelJob   = trace.ParallelJob
)

// GLUnixMixedResult reports a mixed interactive-plus-parallel run.
type GLUnixMixedResult = glunix.MixedResult

// RunGLUnixMixed overlays a parallel-job log on a cluster receiving an
// interactive activity trace. The wire hook (when non-nil) runs on the
// built cluster before the simulation starts — the place to attach a
// fault injector or extra workloads.
var RunGLUnixMixed = glunix.RunMixedWith

// ---- control plane (operate the cluster) ----

// Control-plane aliases: a ControlPlane is the in-process operator API
// over a live cluster (census, cordon/uncordon, drain, live fault
// injection, metric/span streaming); a Remediator closes the
// self-healing loop; a ControlPlaneServer maps virtual time onto the
// wall clock and serves the HTTP/JSON operator API; a
// ControlPlaneClient is its typed client (what nowctl speaks). See
// docs/CONTROLPLANE.md.
type (
	ControlPlane             = controlplane.ControlPlane
	ControlPlaneConfig       = controlplane.Config
	ControlPlaneServer       = controlplane.Server
	ControlPlaneServerConfig = controlplane.ServerConfig
	ControlPlaneClient       = controlplane.Client
	ControlPlaneStack        = controlplane.Stack
	ControlPlaneStackConfig  = controlplane.StackConfig
	Remediator               = controlplane.Remediator
	RemediationPolicy        = controlplane.RemediationPolicy
	WorkstationStatus        = controlplane.NodeStatus
	StoreStatus              = controlplane.StoreStatus
	NOWClusterStatus         = controlplane.ClusterStatus
)

// Control-plane constructors.
var (
	NewControlPlane          = controlplane.New
	NewControlPlaneServer    = controlplane.NewServer
	NewControlPlaneStack     = controlplane.NewStack
	NewRemediator            = controlplane.NewRemediator
	DefaultRemediationPolicy = controlplane.DefaultRemediationPolicy
)

// ---- network RAM multigrid workload ----

// Multigrid aliases: the paper's out-of-core scientific workload
// paging to remote memory.
type (
	MultigridConfig = netram.MultigridConfig
	MultigridResult = netram.MultigridResult
)

// Multigrid constructors.
var (
	DefaultMultigridConfig = netram.DefaultMultigridConfig
	RunMultigrid           = netram.RunMultigrid
)

// ---- GATOR (global-atmosphere model) ----

// GATOR aliases: the paper's end-to-end application study.
type (
	GatorMiniConfig = gator.MiniConfig
	GatorMiniResult = gator.MiniResult
	GatorPhaseTimes = gator.PhaseTimes
)

// GATOR constructors and the paper's Table 4 reference times.
var (
	DefaultGatorMiniConfig = gator.DefaultMiniConfig
	RunGatorMini           = gator.RunMini
	GatorTable4            = gator.Table4
)
