// The simulation substrate: deterministic engines, virtual time, the
// sharded (multicore) execution layer, and registry merging.
package now

import (
	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/proto/collective"
	"github.com/nowproject/now/internal/sim"
)

// Engine is the deterministic discrete-event simulator every NOW system
// runs on.
type Engine = sim.Engine

// Proc is a simulated process.
type Proc = sim.Proc

// Time is a point in virtual time; Duration a span (nanoseconds).
type (
	Time     = sim.Time
	Duration = sim.Duration
)

// Virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// NewEngine creates a simulator seeded for reproducibility.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// ErrStopped is the error Engine.Run returns after Engine.Stop — the
// normal way a driven simulation ends.
var ErrStopped = sim.ErrStopped

// WaitGroup joins concurrently spawned simulated processes.
type WaitGroup = sim.WaitGroup

// NewWaitGroup creates a WaitGroup on e; name labels it in traces.
func NewWaitGroup(e *Engine, name string) *WaitGroup { return sim.NewWaitGroup(e, name) }

// ---- sharded (multicore) execution ----

// ShardedConfig shapes a sharded engine: Parts logical partitions
// (workload identity — part of what a seed means), Workers goroutines
// executing them (never observable in results), the master Seed, and
// the conservative-lookahead Window (at least the minimum cross-
// partition link latency).
type (
	ShardedConfig = sim.ShardedConfig
	ShardedEngine = sim.ShardedEngine
	ShardMsg      = sim.ShardMsg
)

// NewShardedEngine builds Parts deterministic engines coordinated under
// the windowed conservative protocol of DESIGN.md §10.
func NewShardedEngine(cfg ShardedConfig) *ShardedEngine { return sim.NewShardedEngine(cfg) }

// Partitioned-fabric aliases: a PartitionMap assigns nodes to
// partitions; a ShardedFabric is one fabric split into per-partition
// instances with deterministic cross-partition packet handoff.
type (
	PartitionMap  = netsim.PartitionMap
	ShardedFabric = netsim.ShardedFabric
)

// SplitEven maps nodes onto parts partitions in contiguous equal runs.
var SplitEven = netsim.SplitEven

// NewShardedFabric splits cfg across the partitions of pm on se.
func NewShardedFabric(se *ShardedEngine, cfg FabricConfig, pm PartitionMap) (*ShardedFabric, error) {
	return netsim.NewSharded(se, cfg, pm)
}

// NewCommPart builds one partition's fragment of a cluster-wide
// collective communicator: eps holds endpoints only at locally-owned
// ranks (nil elsewhere), nodeOf maps every rank to its node.
var NewCommPart = collective.NewPart

// MergeRegistries combines per-partition metrics registries into one
// stable-ordered registry (counters sum, ".max" gauges and the clock
// take maxima, spans interleave by start time).
var MergeRegistries = obs.Merged
