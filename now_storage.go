// The storage stack: paging to idle remote memory, cooperative file
// caching, software RAID across workstation disks, and the serverless
// network file system.
package now

import (
	"github.com/nowproject/now/internal/coopcache"
	"github.com/nowproject/now/internal/netram"
	"github.com/nowproject/now/internal/swraid"
	"github.com/nowproject/now/internal/xfs"
)

// Network RAM aliases.
type (
	NetRAMRegistry = netram.Registry
	NetRAMServer   = netram.Server
	NetRAMPager    = netram.Pager
)

// Network RAM constructors.
var (
	NewNetRAMRegistry = netram.NewRegistry
	NewNetRAMServer   = netram.NewServer
	NewNetRAMPager    = netram.NewPager
)

// Cooperative caching aliases.
type (
	CoopCacheConfig = coopcache.Config
	CoopCache       = coopcache.System
	CachePolicy     = coopcache.Policy
)

// Cache policies.
const (
	ClientServer = coopcache.ClientServer
	Greedy       = coopcache.Greedy
	NChance      = coopcache.NChance
)

// Cooperative caching constructors.
var (
	DefaultCoopCacheConfig = coopcache.DefaultConfig
	NewCoopCache           = coopcache.New
)

// Software RAID aliases.
type (
	RAIDLevel  = swraid.Level
	RAIDConfig = swraid.Config
	RAIDArray  = swraid.Array
	RAIDStore  = swraid.Store
)

// RAID levels.
const (
	RAID0 = swraid.RAID0
	RAID1 = swraid.RAID1
	RAID5 = swraid.RAID5
)

// Software RAID constructors.
var (
	NewRAIDStore = swraid.NewStore
	NewRAIDArray = swraid.NewArray
)

// xFS aliases.
type (
	XFSConfig = xfs.Config
	XFS       = xfs.System
	FileID    = xfs.FileID
)

// xFS constructors. PipelinedXFSConfig turns on the batched data path
// (range tokens, read-ahead, write-behind group commit — DESIGN.md §9).
var (
	DefaultXFSConfig   = xfs.DefaultConfig
	PipelinedXFSConfig = xfs.PipelinedConfig
	NewXFS             = xfs.New
)
