package now_test

import (
	"errors"
	"testing"

	now "github.com/nowproject/now"
	"github.com/nowproject/now/internal/sim"
)

// TestFacadeQuickstart assembles a small NOW entirely through the public
// facade: a GLUnix cluster runs a parallel job; an xFS stores and
// re-reads a block.
func TestFacadeQuickstart(t *testing.T) {
	e := now.NewEngine(1)
	cfg := now.DefaultGLUnixConfig(4)
	cfg.UserImageBytes = 1 << 20
	cfg.ImageBytes = 1 << 20
	g, err := now.NewGLUnix(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := now.NewJob(1, 4, 5*now.Second, now.Second)
	e.At(0, func() { g.Master.Submit(j) })
	if err := e.RunUntil(2 * now.Minute); err != nil && !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	e.Close()
	if !j.Done() {
		t.Fatal("job did not complete through the facade")
	}

	e2 := now.NewEngine(1)
	xcfg := now.DefaultXFSConfig(6)
	xcfg.BlockBytes = 1024
	fsys, err := now.NewXFS(e2, xcfg)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	e2.Spawn("client", func(p *now.Proc) {
		if err := fsys.Client(0).Write(p, now.FileID(1), 0, data); err != nil {
			t.Error(err)
		}
		got, err := fsys.Client(3).Read(p, now.FileID(1), 0)
		if err != nil {
			t.Error(err)
		} else if len(got) != 1024 || got[0] != 0 || got[100] != 100 {
			t.Error("xFS returned wrong data")
		}
		e2.Stop()
	})
	if err := e2.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
}

func TestFacadeFabricAndAM(t *testing.T) {
	e := now.NewEngine(1)
	fab, err := now.NewFabric(e, now.Myrinet(2))
	if err != nil {
		t.Fatal(err)
	}
	a := now.NewAMEndpoint(e, now.NewNode(e, now.DefaultNodeConfig(0)), fab, now.DefaultAMConfig())
	b := now.NewAMEndpoint(e, now.NewNode(e, now.DefaultNodeConfig(1)), fab, now.DefaultAMConfig())
	b.Register(now.HandlerID(1), func(p *now.Proc, m now.AMsg) (any, int) {
		return m.Arg.(int) + 1, 8
	})
	var got any
	e.Spawn("caller", func(p *now.Proc) {
		got, _ = a.Call(p, 1, now.HandlerID(1), 41, 8)
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestFacadeConstantsWired(t *testing.T) {
	if now.Second != sim.Second || now.RAID5.String() != "RAID-5" {
		t.Fatal("facade constants broken")
	}
	if now.MigrateOnReturn.String() != "migrate-on-return" {
		t.Fatal("policy alias broken")
	}
	if now.NChance.String() != "n-chance" {
		t.Fatal("cache policy alias broken")
	}
}
