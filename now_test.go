package now_test

import (
	"errors"
	"strings"
	"testing"

	now "github.com/nowproject/now"
	"github.com/nowproject/now/internal/sim"
)

// TestFacadeQuickstart assembles a small NOW entirely through the public
// facade: a GLUnix cluster runs a parallel job; an xFS stores and
// re-reads a block.
func TestFacadeQuickstart(t *testing.T) {
	e := now.NewEngine(1)
	cfg := now.DefaultGLUnixConfig(4)
	cfg.UserImageBytes = 1 << 20
	cfg.ImageBytes = 1 << 20
	g, err := now.NewGLUnix(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := now.NewJob(1, 4, 5*now.Second, now.Second)
	e.At(0, func() { g.Master.Submit(j) })
	if err := e.RunUntil(2 * now.Minute); err != nil && !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	e.Close()
	if !j.Done() {
		t.Fatal("job did not complete through the facade")
	}

	e2 := now.NewEngine(1)
	xcfg := now.DefaultXFSConfig(6)
	xcfg.BlockBytes = 1024
	fsys, err := now.NewXFS(e2, xcfg)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	e2.Spawn("client", func(p *now.Proc) {
		if err := fsys.Client(0).Write(p, now.FileID(1), 0, data); err != nil {
			t.Error(err)
		}
		got, err := fsys.Client(3).Read(p, now.FileID(1), 0)
		if err != nil {
			t.Error(err)
		} else if len(got) != 1024 || got[0] != 0 || got[100] != 100 {
			t.Error("xFS returned wrong data")
		}
		e2.Stop()
	})
	if err := e2.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
}

func TestFacadeFabricAndAM(t *testing.T) {
	e := now.NewEngine(1)
	fab, err := now.NewFabric(e, now.Myrinet(2))
	if err != nil {
		t.Fatal(err)
	}
	a := now.NewAMEndpoint(e, now.NewNode(e, now.DefaultNodeConfig(0)), fab, now.DefaultAMConfig())
	b := now.NewAMEndpoint(e, now.NewNode(e, now.DefaultNodeConfig(1)), fab, now.DefaultAMConfig())
	b.Register(now.HandlerID(1), func(p *now.Proc, m now.AMsg) (any, int) {
		return m.Arg.(int) + 1, 8
	})
	var got any
	e.Spawn("caller", func(p *now.Proc) {
		got, _ = a.Call(p, 1, now.HandlerID(1), 41, 8)
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestFacadeConstantsWired(t *testing.T) {
	if now.Second != sim.Second || now.RAID5.String() != "RAID-5" {
		t.Fatal("facade constants broken")
	}
	if now.MigrateOnReturn.String() != "migrate-on-return" {
		t.Fatal("policy alias broken")
	}
	if now.NChance.String() != "n-chance" {
		t.Fatal("cache policy alias broken")
	}
}

// TestFacadeInstrumentable pins the Instrumentable contract: every
// subsystem the front door exports must satisfy it, and InstrumentAll
// must wire them into one registry (nils skipped).
func TestFacadeInstrumentable(t *testing.T) {
	e := now.NewEngine(1)
	defer e.Close()
	fab, err := now.NewFabric(e, now.Myrinet(4))
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*now.AMEndpoint, 4)
	for i := range eps {
		eps[i] = now.NewAMEndpoint(e, now.NewNode(e, now.DefaultNodeConfig(now.NodeID(i))), fab, now.DefaultAMConfig())
	}
	comm, err := now.NewComm(e, eps, now.CollectiveConfig{Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	e2 := now.NewEngine(1)
	defer e2.Close()
	fsys, err := now.NewXFS(e2, now.DefaultXFSConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	g, err := now.NewGLUnix(now.NewEngine(1), now.DefaultGLUnixConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	// The compile-time contract: each subsystem IS an Instrumentable.
	subs := []now.Instrumentable{e, fab, comm, fsys, g, nil}
	reg := now.NewRegistry()
	now.InstrumentAll(reg, subs...)
	reg.Snapshot()
	for _, name := range []string{"sim.events.scheduled", "net.offered", "collective.barriers", "xfs.reads"} {
		_, cok := reg.CounterValue(name)
		_, gok := reg.GaugeValue(name)
		if !cok && !gok {
			t.Fatalf("InstrumentAll did not register %s", name)
		}
	}
}

// TestFacadeFaultsAndCollectives drives the fault-injection and
// collective surfaces end to end through the facade only.
func TestFacadeFaultsAndCollectives(t *testing.T) {
	e := now.NewEngine(1)
	fsys, err := now.NewXFS(e, now.PipelinedXFSConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := now.ParseFaultPlan(strings.NewReader("100ms diskfail 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	inj := now.NewInjector(e, now.NewXFSFaultTarget(fsys), plan, nil)
	inj.Schedule()
	e.Spawn("io", func(p *now.Proc) {
		data := make([]byte, 4*8192)
		if err := fsys.Client(0).WriteAt(p, now.FileID(1), 0, data); err != nil {
			t.Error(err)
		}
		if err := fsys.Client(0).Sync(p); err != nil {
			t.Error(err)
		}
		p.Sleep(200 * now.Millisecond)
		if _, err := fsys.Client(3).ReadAt(p, now.FileID(1), 0, 4); err != nil {
			t.Error(err)
		}
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, now.ErrStopped) {
		t.Fatal(err)
	}
	e.Close()
	if inj.Applied() != 1 {
		t.Fatalf("fault not applied: %d", inj.Applied())
	}

	e2 := now.NewEngine(1)
	fab, err := now.NewFabric(e2, now.ATM155(4))
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*now.AMEndpoint, 4)
	for i := range eps {
		eps[i] = now.NewAMEndpoint(e2, now.NewNode(e2, now.DefaultNodeConfig(now.NodeID(i))), fab, now.DefaultAMConfig())
	}
	comm, err := now.NewComm(e2, eps, now.DefaultCollectiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	wg := now.NewWaitGroup(e2, "ranks")
	wg.Add(4)
	for r := 0; r < 4; r++ {
		r := r
		e2.Spawn("rank", func(p *now.Proc) {
			defer wg.Done()
			if err := now.Barrier(p, comm, r); err != nil {
				t.Error(err)
			}
			if err := now.AllToAll(p, comm, r, 256); err != nil {
				t.Error(err)
			}
		})
	}
	e2.Spawn("monitor", func(p *now.Proc) {
		wg.Wait(p)
		e2.Stop()
	})
	if err := e2.Run(); !errors.Is(err, now.ErrStopped) {
		t.Fatal(err)
	}
	e2.Close()
}
