#!/usr/bin/env bash
# scripts/apicheck.sh — the front-door gate. examples/ must compile
# against the public now package alone: every example is a promise that
# the facade is sufficient, so an internal import there means now.go is
# missing an export. cmd/ may additionally reach the repo-internal
# tooling packages that deliberately have no facade (experiment drivers,
# trace generators, observability export, stats helpers, the control
# plane client/types nowctl talks, and sim for its time units) — but
# nothing else: if a command needs a subsystem, the subsystem belongs
# in now.go.
#
# Matching includes the leading quote so that test data quoting go test
# output (which names internal packages) does not trip the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

pattern='"github.com/nowproject/now/internal/'
allow='/internal/(experiments|trace|obs|stats|controlplane|sim|federation)"'
fail=0

if bad=$(grep -rn --include='*.go' "$pattern" examples); then
	echo "apicheck: examples/ must import only the public now API:" >&2
	echo "$bad" >&2
	fail=1
fi

if bad=$(grep -rn --include='*.go' "$pattern" cmd | grep -Ev "$allow"); then
	echo "apicheck: cmd/ may import internal/{experiments,trace,obs,stats} only:" >&2
	echo "$bad" >&2
	fail=1
fi

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "apicheck: examples/ and cmd/ respect the public API surface"
