#!/usr/bin/env bash
# scripts/bench.sh — run the scheduler microbenchmarks and record the
# result as one labelled run in BENCH_sim.json (the tier-1 perf
# trajectory; see cmd/benchjson).
#
# Usage:
#   scripts/bench.sh [label]        # label defaults to the git short rev
#   BENCHTIME=3s scripts/bench.sh   # longer per-bench runtime
#   FULL=1 scripts/bench.sh         # also run the paper-experiment
#                                   # benches at the repo root (slow)
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo dev)}"
benchtime="${BENCHTIME:-1s}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

sim_benches='BenchmarkEventThroughput$|BenchmarkProcSwitch$|BenchmarkResourceContention$|BenchmarkYieldStorm$|BenchmarkTimerCancelChurn$|BenchmarkMailboxPingPong$|BenchmarkShardedThroughput/'
go test -run '^$' -bench "$sim_benches" -benchmem -benchtime "$benchtime" \
    ./internal/sim/ | tee "$raw"

# Degraded-mode file-system bandwidth (virtual-time MB/s, healthy vs
# post-crash reconstruct reads) — the fault studies' headline figure —
# and the pipelined-vs-serial sequential scan (serial/pipelined MB/s
# plus the speedup the batched data path buys).
go test -run '^$' -bench 'BenchmarkXFSReadDegraded$|BenchmarkXFSSeqScan$' -benchtime "$benchtime" \
    ./internal/xfs/ | tee -a "$raw"

# Control-plane snapshot streaming: the per-poll cost an operator
# dashboard imposes on the serve loop's drive goroutine (status +
# metrics snapshot + span fetch + JSON export against a warm stack).
go test -run '^$' -bench 'BenchmarkSnapshotStream$' -benchmem -benchtime "$benchtime" \
    ./internal/controlplane/ | tee -a "$raw"

# Fabric hot path (must stay at 0 allocs/op), per-hop topology routing
# (torus dimension-order, 0 allocs/op), and the collective scale
# headliners: the 1,024-rank software-tree barrier, its in-network
# counterpart on a fat-tree, and a 128-rank all-to-all, with virtual
# µs/op alongside the wall-clock figures.
go test -run '^$' -bench 'BenchmarkFabricDelivery$|BenchmarkTorusRoute$' -benchmem -benchtime "$benchtime" \
    ./internal/netsim/ | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkBarrier1024$|BenchmarkFatTreeBarrier1024$|BenchmarkAllToAll128$' -benchtime 2x \
    ./internal/proto/collective/ | tee -a "$raw"

# Wide-area federation: a full lease grant/recall/write-back round trip
# over the WAN, and the spill placer's decision cost against a gossiped
# peer census (virtual-time figures; see docs/FEDERATION.md).
go test -run '^$' -bench 'BenchmarkWANLeaseRecall$|BenchmarkSpillPlacement$' -benchtime "$benchtime" \
    ./internal/federation/ | tee -a "$raw"

if [ "${FULL:-0}" = "1" ]; then
    # One iteration of each experiment bench: regenerates every table
    # and figure once and reports the headline paper metrics.
    go test -run '^$' -bench . -benchtime 1x . | tee -a "$raw"
fi

go run ./cmd/benchjson -label "$label" -out BENCH_sim.json < "$raw"
