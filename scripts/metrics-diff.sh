#!/usr/bin/env bash
# scripts/metrics-diff.sh — compare two metrics JSON exports (from
# `nowsim -metrics` or `nowbench -metrics`). Because exports are
# stable-ordered and byte-deterministic, a plain diff is meaningful:
# identical runs produce no output, and any difference pinpoints the
# metric that moved.
#
# Usage:
#   scripts/metrics-diff.sh baseline.json candidate.json
#
# Exit status: 0 when identical, 1 when they differ (diff's own codes).
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <baseline.json> <candidate.json>" >&2
  exit 2
fi

a="$1"
b="$2"
for f in "$a" "$b"; do
  if [[ ! -r "$f" ]]; then
    echo "metrics-diff: cannot read $f" >&2
    exit 2
  fi
done

if cmp -s "$a" "$b"; then
  echo "metrics-diff: identical ($a == $b)"
  exit 0
fi

# Unified diff of the pretty-printed JSON: stable ordering means every
# hunk is a real value change, not key-order noise.
diff -u --label "$a" --label "$b" "$a" "$b"
