#!/usr/bin/env bash
# scripts/verify.sh — the checks every PR must pass. Superset of the
# tier-1 gate (build + test): adds go vet across the module and a race
# run of internal/sim, whose driver-token goroutine handoff is exactly
# the kind of code the race detector exists for.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== public API surface (examples/ and cmd/ import rules)"
scripts/apicheck.sh
echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test ./..."
go test ./...
echo "== go test -race ./internal/sim/... (incl. sharded engine paths)"
go test -race -count=1 ./internal/sim/...
echo "== go test -race ./internal/faults/..."
go test -race -count=1 ./internal/faults/...
echo "== go test -race ./internal/controlplane/... (serve drive loop + HTTP round trip)"
go test -race -count=1 ./internal/controlplane/...
echo "== go test -race ./internal/netsim/... ./internal/proto/... (incl. cross-shard handoff)"
go test -race -count=1 ./internal/netsim/... ./internal/proto/...
echo "== go test -race sharded experiments stack (engine+fabric+collectives end to end)"
go test -race -count=1 -run 'TestSharded' ./internal/experiments/ >/dev/null
echo "== netsim fabric accounting regressions (drop-before-reserve, FIFO under fault churn)"
go test -count=1 -run 'TestPartitionFloodDoesNotDelayHealthyTraffic|TestLinkFaultFIFOUnderChurn|TestPartitionDropsAndAccounts' ./internal/netsim/ >/dev/null
echo "== observability golden determinism (byte-identical metrics across runs)"
go test -count=1 -run 'TestMetricsGoldenDeterminism' ./cmd/nowsim/ >/dev/null
go test -count=1 -run 'TestEngineMetricsDeterministic' ./internal/sim/ >/dev/null
echo "== fault-plan golden determinism (same plan -> byte-identical exports)"
go test -count=1 -run 'TestFaultedRunGoldenDeterminism' ./cmd/nowsim/ >/dev/null
go test -count=1 -run 'TestInjectorDeterministicExport' ./internal/faults/ >/dev/null
echo "== collective golden determinism (32/128-rank runs + SC1 CLI export)"
go test -count=1 -run 'TestDeterminismGolden32|TestDeterminismGolden128' ./internal/proto/collective/ >/dev/null
go test -count=1 -run 'TestScaleStudyGoldenDeterminism' ./cmd/nowbench/ >/dev/null
echo "== xFS pipelined data path golden determinism (ST2 byte-identical)"
go test -count=1 -run 'TestSeqScanGoldenDeterminism' ./cmd/nowbench/ >/dev/null
echo "== self-healing golden determinism (AV2 byte-identical, remediation on beats off)"
go test -count=1 -run 'TestRemediationGoldenDeterminism' ./cmd/nowbench/ >/dev/null
go test -count=1 -run 'TestRemediationStudyImproves' ./internal/experiments/ >/dev/null
echo "== topology study golden determinism (SC3 byte-identical, fabric conservation under loss)"
go test -count=1 -run 'TestTopologyStudyGoldenDeterminism' ./cmd/nowbench/ >/dev/null
go test -count=1 -run 'TestTopologyLatencyAndContention|TestShardedLossInvariant' ./internal/netsim/ >/dev/null
go test -count=1 -run 'TestInNetValuesAcrossTopologies|TestEpochIsolationUnderRetryChurn' ./internal/proto/collective/ >/dev/null
echo "== cross-shard golden determinism (nowsim -shards 1/2/4/8 byte-identical)"
go test -count=1 -run 'TestShardedRunGoldenDeterminism' ./cmd/nowsim/ >/dev/null
go test -count=1 -run 'TestShardedTrafficDeterministicAcrossWorkers' ./internal/experiments/ >/dev/null
go test -count=1 -run 'TestShardedDeterminismAcrossWorkers|TestShardedStopMidDrain' ./internal/sim/ >/dev/null
echo "== scenario gate (parse every .scn, run shipped stories, diff golden reports)"
go run ./cmd/nowsim check examples/scenarios/*.scn >/dev/null
for scn in examples/scenarios/*.scn; do
  golden="${scn%.scn}.report.golden"
  [ -f "$golden" ] || { echo "missing golden report for $scn" >&2; exit 1; }
  # nowsim run exits 2 on any failed/unknown assertion; -e fails the gate.
  go run ./cmd/nowsim run "$scn" | diff -u "$golden" - \
    || { echo "scenario report drifted from $golden" >&2; exit 1; }
done
go test -count=1 -run 'TestScenarioRunGoldenDeterminism|TestScenarioShardedWorkerInvariance|TestOperatorScenarioShardsInvariance' ./cmd/nowsim/ >/dev/null
go test -count=1 -run 'TestParsePrintIdentity|TestRunDeterminism|TestFederatedValidation|TestRunFederated' ./internal/scenario/ >/dev/null
echo "== go test -race ./internal/federation/... (WAN gateways + lease recalls + spill under churn)"
go test -race -count=1 ./internal/federation/...
echo "== wide-area golden determinism (WA1 byte-identical, crossover pinned to the closed form)"
go test -count=1 -run 'TestWideAreaGoldenDeterminism' ./cmd/nowbench/ >/dev/null
go test -count=1 -run 'TestWideAreaCrossover|TestWideAreaDeterminism' ./internal/experiments/ >/dev/null
go test -count=1 -run 'TestFederatedDeterminismAcrossWorkers' ./internal/federation/ >/dev/null
echo "verify: all checks passed"
